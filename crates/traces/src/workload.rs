//! The paper's measurement protocol (§4.2).
//!
//! "We first insert items into the hash table until the load factor
//! reaches the predefined value. After that, we insert 1000 items into the
//! hash table, then query and delete 1000 items from the hash table. At
//! last, we calculate the average latency of requesting an item."
//!
//! [`Workload::run`] executes exactly that against any
//! [`HashScheme`]/[`Trace`] pair, reporting per-operation latency
//! (simulated nanoseconds under [`SimPmem`](nvm_pmem::SimPmem), wall-clock
//! under [`RealPmem`](nvm_pmem::RealPmem)), L3 misses (when the backend
//! models a cache), and persistence-operation counts.

use crate::{Trace, Zipf};
use nvm_cachesim::CacheStats;
use nvm_hashfn::{HashKey, Pod};
use nvm_metrics::{Histogram, Json, MetricsRegistry, OpDelta, OpTrace, SchemeInstrumentation};
use nvm_pmem::{Pmem, PmemStats};
use nvm_table::{HashScheme, InsertError, OpKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Per-phase measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpMetrics {
    /// Operations executed.
    pub ops: u64,
    /// Total latency across the phase, nanoseconds (simulated when the
    /// backend provides a clock, wall-clock otherwise).
    pub total_ns: u64,
    /// L3 misses across the phase (0 if the backend has no cache model).
    pub llc_misses: u64,
    /// Persistence-operation deltas across the phase.
    pub pmem: PmemStats,
}

impl OpMetrics {
    /// Average latency per operation, nanoseconds.
    pub fn avg_ns(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.ops as f64
        }
    }

    /// Average L3 misses per operation.
    pub fn avg_llc_misses(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.ops as f64
        }
    }

    /// Average flushed cachelines per operation.
    pub fn avg_flushes(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.pmem.flushes as f64 / self.ops as f64
        }
    }
}

/// Distribution-level metrics gathered alongside the phase averages:
/// per-op latency histograms (one [`OpTrace`] window per measured op),
/// cumulative persistence/cache counters for the whole run (fill phase
/// included), and the scheme's own probe/occupancy/displacement
/// histograms when it records them.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Per-op latency distribution of the measured insert phase
    /// (simulated ns when the backend has a clock, wall-clock otherwise).
    pub insert_latency: Histogram,
    /// Per-op latency distribution of the measured query phase.
    pub query_latency: Histogram,
    /// Per-op latency distribution of the measured delete phase.
    pub delete_latency: Histogram,
    /// Persistence-operation totals across the whole run, fill included.
    pub pmem_total: PmemStats,
    /// Cache-hierarchy totals across the whole run, when the backend
    /// models a cache.
    pub cache_total: Option<CacheStats>,
    /// The scheme's probe/occupancy/displacement histograms — `None`
    /// unless the scheme was built with its `instrument` feature.
    pub scheme: Option<SchemeInstrumentation>,
}

impl RunMetrics {
    /// Packs the metrics into a [`MetricsRegistry`] with the stable
    /// section names every experiment shares: `latency` (per-phase
    /// histograms), `pmem`, and optionally `cache` and `scheme`.
    pub fn to_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let mut lat = Json::obj();
        lat.insert("insert", self.insert_latency.to_json());
        lat.insert("query", self.query_latency.to_json());
        lat.insert("delete", self.delete_latency.to_json());
        reg.set("latency", lat);
        reg.set_pmem("pmem", &self.pmem_total);
        if let Some(c) = &self.cache_total {
            reg.set_cache("cache", c);
        }
        if let Some(s) = &self.scheme {
            reg.set_instrumentation("scheme", s);
        }
        reg
    }

    /// The registry serialized as one JSON object (the `metrics` block
    /// the harness embeds in its results files).
    pub fn to_json(&self) -> Json {
        self.to_registry().to_json()
    }
}

/// Results of one full workload run.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Scheme name (e.g. "group", "linear-L").
    pub scheme: String,
    /// Trace name.
    pub trace: String,
    /// Load factor actually reached by the fill phase.
    pub load_factor: f64,
    /// Items resident after the fill phase.
    pub fill_count: u64,
    pub insert: OpMetrics,
    pub query: OpMetrics,
    pub delete: OpMetrics,
    /// Latency distributions and cumulative counters for the run.
    pub metrics: RunMetrics,
}

impl WorkloadReport {
    /// Metrics for one op kind.
    pub fn of(&self, kind: OpKind) -> &OpMetrics {
        match kind {
            OpKind::Insert => &self.insert,
            OpKind::Query => &self.query,
            OpKind::Delete => &self.delete,
        }
    }
}

/// The fill-then-measure workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Target `len / capacity` before measuring.
    pub load_factor: f64,
    /// Operations per measured phase (the paper uses 1000).
    pub ops: usize,
}

impl Workload {
    /// The paper's protocol at the given load factor.
    pub fn paper(load_factor: f64) -> Self {
        Workload {
            load_factor,
            ops: 1000,
        }
    }

    /// Fills `table` from `trace` until `load_factor`. Returns the fill
    /// keys. Stops early (returning fewer) if the scheme rejects an
    /// insert first.
    pub fn fill<P, K, V, S, T>(
        &self,
        pm: &mut P,
        table: &mut S,
        trace: &mut T,
        mut value_of: impl FnMut(&K) -> V,
    ) -> Vec<K>
    where
        P: Pmem,
        K: HashKey,
        V: Pod,
        S: HashScheme<P, K, V>,
        T: Trace<Key = K>,
    {
        let target = (self.load_factor * table.capacity() as f64) as u64;
        let mut keys = Vec::with_capacity(target as usize);
        while table.len(pm) < target {
            let k = trace.next_key();
            let v = value_of(&k);
            match table.insert(pm, k, v) {
                Ok(()) => keys.push(k),
                Err(InsertError::TableFull) => break,
                Err(e) => panic!("fill insert failed: {e}"),
            }
        }
        keys
    }

    /// Runs the full protocol. `value_of` maps keys to stored values.
    pub fn run<P, K, V, S, T>(
        &self,
        pm: &mut P,
        table: &mut S,
        trace: &mut T,
        mut value_of: impl FnMut(&K) -> V,
    ) -> WorkloadReport
    where
        P: Pmem,
        K: HashKey,
        V: Pod,
        S: HashScheme<P, K, V>,
        T: Trace<Key = K>,
    {
        let run_stats_before = pm.stats();
        let run_cache_before = pm.cache_stats();

        let fill_keys = self.fill(pm, table, trace, &mut value_of);
        let fill_count = table.len(pm);
        let load_factor = table.load_factor(pm);

        // Fresh keys for the measured inserts (also the delete victims,
        // keeping the load factor steady across phases).
        let insert_keys = trace.take_keys(self.ops);
        // Query victims: resident fill keys, sampled evenly.
        let step = (fill_keys.len() / self.ops.max(1)).max(1);
        let query_keys: Vec<K> = fill_keys.iter().step_by(step).take(self.ops).copied().collect();

        // Per-op latency distributions: one OpTrace window per measured
        // op. The trace only snapshots DRAM-side counters, so it never
        // perturbs the simulated clock or cache state it observes.
        let insert_latency = Histogram::latency_ns();
        let query_latency = Histogram::latency_ns();
        let delete_latency = Histogram::latency_ns();

        let insert = Self::measure(pm, |pm| {
            let mut done = 0;
            for k in &insert_keys {
                let tr = OpTrace::begin(pm);
                let ok = table.insert(pm, *k, value_of(k)).is_ok();
                insert_latency.record(tr.end(pm).latency_ns());
                if ok {
                    done += 1;
                }
            }
            done
        });

        let query = Self::measure(pm, |pm| {
            let mut found = 0;
            for k in &query_keys {
                let tr = OpTrace::begin(pm);
                let hit = table.get(pm, k).is_some();
                query_latency.record(tr.end(pm).latency_ns());
                if hit {
                    found += 1;
                }
            }
            assert_eq!(found, query_keys.len() as u64, "resident key not found");
            found
        });

        let delete = Self::measure(pm, |pm| {
            let mut done = 0;
            for k in &insert_keys {
                let tr = OpTrace::begin(pm);
                let hit = table.remove(pm, k);
                delete_latency.record(tr.end(pm).latency_ns());
                if hit {
                    done += 1;
                }
            }
            done
        });

        let metrics = RunMetrics {
            insert_latency,
            query_latency,
            delete_latency,
            pmem_total: pm.stats().delta_since(&run_stats_before),
            cache_total: match (run_cache_before, pm.cache_stats()) {
                (Some(a), Some(b)) => Some(b.delta_since(&a)),
                _ => None,
            },
            scheme: table.instrumentation().cloned(),
        };

        WorkloadReport {
            scheme: table.name().to_string(),
            trace: trace.name().to_string(),
            load_factor,
            fill_count,
            insert,
            query,
            delete,
            metrics,
        }
    }

    /// Runs `phase`, measuring elapsed time (simulated when available),
    /// LLC misses, and pmem-op deltas. `phase` returns the op count.
    fn measure<P: Pmem>(pm: &mut P, phase: impl FnOnce(&mut P) -> u64) -> OpMetrics {
        let stats_before = pm.stats();
        let cache_before = pm.cache_stats();
        let sim_before = pm.sim_time_ns();
        let wall = Instant::now();

        let ops = phase(pm);

        let total_ns = match (sim_before, pm.sim_time_ns()) {
            (Some(a), Some(b)) => b - a,
            _ => wall.elapsed().as_nanos() as u64,
        };
        let llc_misses = match (cache_before, pm.cache_stats()) {
            (Some(a), Some(b)) => b.delta_since(&a).llc_misses(),
            _ => 0,
        };
        OpMetrics {
            ops,
            total_ns,
            llc_misses,
            pmem: pm.stats().delta_since(&stats_before),
        }
    }
}

/// The YCSB core mixes the harness sweeps. An "update" is modelled as
/// delete + reinsert of a resident key — the closest analogue for tables
/// whose cells are immutable once published (in-place value overwrite
/// would bypass the failure-atomic commit the schemes are built around).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbMix {
    /// Workload A — update heavy: 50 % reads, 50 % updates.
    A,
    /// Workload B — read heavy: 95 % reads, 5 % updates.
    B,
    /// Workload C — read only.
    C,
}

impl YcsbMix {
    /// All three mixes, sweep order.
    pub const ALL: [YcsbMix; 3] = [YcsbMix::A, YcsbMix::B, YcsbMix::C];

    /// Mix name as used in the YCSB paper ("A"/"B"/"C").
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::A => "A",
            YcsbMix::B => "B",
            YcsbMix::C => "C",
        }
    }

    /// Fraction of requests that are reads.
    pub fn read_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.5,
            YcsbMix::B => 0.95,
            YcsbMix::C => 1.0,
        }
    }
}

/// How a YCSB run picks which resident key each request touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyDist {
    /// Every resident key equally likely.
    Uniform,
    /// YCSB's default skew: Zipf with exponent 0.99 over the resident
    /// keys ([`Zipf::ycsb`]).
    Zipfian,
}

impl KeyDist {
    /// Both distributions, sweep order.
    pub const ALL: [KeyDist; 2] = [KeyDist::Uniform, KeyDist::Zipfian];

    /// Distribution name for tables/CSVs.
    pub fn label(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian => "zipfian",
        }
    }
}

/// Results of one YCSB run: per-kind phase metrics, latency
/// distributions, and whole-run counters.
#[derive(Debug, Clone)]
pub struct YcsbReport {
    /// Scheme name (e.g. "iceberg").
    pub scheme: String,
    /// The request mix that ran.
    pub mix: YcsbMix,
    /// The key-choice distribution that ran.
    pub dist: KeyDist,
    /// Load factor actually reached by the fill phase.
    pub load_factor: f64,
    /// Items resident during the measured phase.
    pub fill_count: u64,
    /// Aggregate read metrics.
    pub read: OpMetrics,
    /// Aggregate update (delete + reinsert) metrics.
    pub update: OpMetrics,
    /// Per-read latency distribution.
    pub read_latency: Histogram,
    /// Per-update latency distribution.
    pub update_latency: Histogram,
    /// Persistence totals across the whole run, fill included.
    pub pmem_total: PmemStats,
    /// The scheme's probe/occupancy/displacement histograms (fill phase
    /// included) when it was built with `instrument`.
    pub scheme_metrics: Option<SchemeInstrumentation>,
}

impl YcsbReport {
    /// The shared-schema `metrics` block (`latency` + `pmem` + `scheme`
    /// sections, like `RunMetrics::to_json`).
    pub fn to_json(&self) -> Json {
        let mut reg = MetricsRegistry::new();
        let mut lat = Json::obj();
        lat.insert("read", self.read_latency.to_json());
        lat.insert("update", self.update_latency.to_json());
        reg.set("latency", lat);
        reg.set_pmem("pmem", &self.pmem_total);
        if let Some(s) = &self.scheme_metrics {
            reg.set_instrumentation("scheme", s);
        }
        reg.to_json()
    }
}

/// A YCSB-style run: fill to a load factor, then fire `ops` requests at
/// resident keys under the chosen mix and key distribution. Updates
/// reinsert the key they delete, so the load factor holds steady.
#[derive(Debug, Clone, Copy)]
pub struct YcsbWorkload {
    /// Target `len / capacity` before the measured phase.
    pub load_factor: f64,
    /// Requests in the measured phase.
    pub ops: usize,
    /// Read/update mix.
    pub mix: YcsbMix,
    /// Key-choice distribution.
    pub dist: KeyDist,
    /// Seed for the request stream (op kinds + key picks).
    pub seed: u64,
}

impl YcsbWorkload {
    /// Runs the workload. `value_of` maps keys to stored values (updates
    /// rewrite the same mapping; the write path cost is what's measured).
    pub fn run<P, K, V, S, T>(
        &self,
        pm: &mut P,
        table: &mut S,
        trace: &mut T,
        mut value_of: impl FnMut(&K) -> V,
    ) -> YcsbReport
    where
        P: Pmem,
        K: HashKey,
        V: Pod,
        S: HashScheme<P, K, V>,
        T: Trace<Key = K>,
    {
        let run_stats_before = pm.stats();
        let keys = Workload {
            load_factor: self.load_factor,
            ops: 0,
        }
        .fill(pm, table, trace, &mut value_of);
        assert!(!keys.is_empty(), "fill left no resident keys to request");
        let fill_count = table.len(pm);
        let load_factor = table.load_factor(pm);

        let zipf = match self.dist {
            KeyDist::Zipfian => Some(Zipf::ycsb(keys.len())),
            KeyDist::Uniform => None,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x59C5_B0CC);

        let read_latency = Histogram::latency_ns();
        let update_latency = Histogram::latency_ns();
        let mut read = OpMetrics::default();
        let mut update = OpMetrics::default();

        for _ in 0..self.ops {
            // Zipf ranks map straight onto fill order; the fill keys are
            // already in random order, so rank 0 is an arbitrary hot key.
            let i = match &zipf {
                Some(z) => z.sample(&mut rng),
                None => rng.gen_range(0..keys.len()),
            };
            let k = keys[i];
            let is_read = rng.gen::<f64>() < self.mix.read_fraction();
            let tr = OpTrace::begin(pm);
            if is_read {
                let hit = table.get(pm, &k).is_some();
                let d = tr.end(pm);
                assert!(hit, "resident key missing under YCSB read");
                read_latency.record(d.latency_ns());
                accumulate(&mut read, &d);
            } else {
                let removed = table.remove(pm, &k);
                let v = value_of(&k);
                table.insert(pm, k, v).expect("YCSB update reinsert");
                let d = tr.end(pm);
                assert!(removed, "resident key missing under YCSB update");
                update_latency.record(d.latency_ns());
                accumulate(&mut update, &d);
            }
        }

        YcsbReport {
            scheme: table.name().to_string(),
            mix: self.mix,
            dist: self.dist,
            load_factor,
            fill_count,
            read,
            update,
            read_latency,
            update_latency,
            pmem_total: pm.stats().delta_since(&run_stats_before),
            scheme_metrics: table.instrumentation().cloned(),
        }
    }
}

/// Folds one op's deltas into a phase accumulator.
fn accumulate(m: &mut OpMetrics, d: &OpDelta) {
    m.ops += 1;
    m.total_ns += d.latency_ns();
    m.llc_misses += d.llc_misses();
    m.pmem.reads += d.pmem.reads;
    m.pmem.bytes_read += d.pmem.bytes_read;
    m.pmem.writes += d.pmem.writes;
    m.pmem.bytes_written += d.pmem.bytes_written;
    m.pmem.atomic_writes += d.pmem.atomic_writes;
    m.pmem.flushes += d.pmem.flushes;
    m.pmem.fences += d.pmem.fences;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomNum;
    use nvm_pmem::{Region, SimConfig, SimPmem};
    use nvm_table::ConsistencyMode;

    // The workload driver is scheme-agnostic; exercise it with a baseline
    // (the baselines crate depends on traces only in dev, so use a tiny
    // in-crate dummy instead).
    struct Dummy {
        map: std::collections::HashMap<u64, u64>,
        cap: u64,
    }

    impl<P: Pmem> HashScheme<P, u64, u64> for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn insert(&mut self, pm: &mut P, key: u64, value: u64) -> Result<(), InsertError> {
            // Touch pmem so metrics are non-trivial.
            pm.write_u64((key % 64) as usize * 8, value);
            pm.persist((key % 64) as usize * 8, 8);
            self.map.insert(key, value);
            Ok(())
        }
        fn get(&self, pm: &P, key: &u64) -> Option<u64> {
            pm.read_u64((key % 64) as usize * 8);
            self.map.get(key).copied()
        }
        fn remove(&mut self, pm: &mut P, key: &u64) -> bool {
            pm.write_u64((key % 64) as usize * 8, 0);
            pm.persist((key % 64) as usize * 8, 8);
            self.map.remove(key).is_some()
        }
        fn len(&self, _pm: &P) -> u64 {
            self.map.len() as u64
        }
        fn capacity(&self) -> u64 {
            self.cap
        }
        fn recover(&mut self, _pm: &mut P) {}
        fn check_consistency(&self, _pm: &P) -> Result<(), nvm_table::TableError> {
            Ok(())
        }
    }

    #[test]
    fn protocol_reaches_load_factor_and_measures() {
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        let mut t = Dummy {
            map: Default::default(),
            cap: 4096,
        };
        let mut trace = RandomNum::new(1);
        let w = Workload { load_factor: 0.5, ops: 100 };
        let r = w.run(&mut pm, &mut t, &mut trace, |&k| k + 1);
        assert_eq!(r.scheme, "dummy");
        assert_eq!(r.trace, "RandomNum");
        assert!(r.load_factor >= 0.5 && r.load_factor < 0.55, "{}", r.load_factor);
        assert_eq!(r.insert.ops, 100);
        assert_eq!(r.query.ops, 100);
        assert_eq!(r.delete.ops, 100);
        assert!(r.insert.total_ns > 0);
        assert!(r.insert.pmem.flushes >= 100);
        // Load factor unchanged by the measured phases (insert == delete).
        assert_eq!(t.map.len() as u64, r.fill_count);
        // The metrics block saw every measured op and the whole run's
        // persistence traffic (fill included, so ≥ the insert phase's).
        assert_eq!(r.metrics.insert_latency.count(), 100);
        assert_eq!(r.metrics.query_latency.count(), 100);
        assert_eq!(r.metrics.delete_latency.count(), 100);
        assert!(r.metrics.insert_latency.p50() > 0.0);
        assert!(r.metrics.pmem_total.flushes > r.insert.pmem.flushes);
        assert!(r.metrics.cache_total.is_some());
        // Dummy never records scheme instrumentation.
        assert!(r.metrics.scheme.is_none());
        let json = r.metrics.to_json().to_string_pretty();
        assert!(json.contains("\"flushes\""), "{json}");
        assert!(json.contains("\"latency\""), "{json}");
    }

    #[test]
    fn ycsb_mix_splits_reads_and_updates() {
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        let mut t = Dummy {
            map: Default::default(),
            cap: 4096,
        };
        let mut trace = RandomNum::new(3);
        let w = YcsbWorkload {
            load_factor: 0.25,
            ops: 400,
            mix: YcsbMix::A,
            dist: KeyDist::Uniform,
            seed: 9,
        };
        let r = w.run(&mut pm, &mut t, &mut trace, |&k| k + 1);
        assert_eq!(r.scheme, "dummy");
        assert_eq!(r.read.ops + r.update.ops, 400);
        // Mix A: 50/50 within binomial slack.
        assert!((120..=280).contains(&(r.update.ops as usize)), "{}", r.update.ops);
        assert_eq!(r.read_latency.count(), r.read.ops);
        assert_eq!(r.update_latency.count(), r.update.ops);
        // An update is a remove + insert: it must flush, a read must not.
        assert!(r.update.pmem.flushes >= 2 * r.update.ops);
        assert_eq!(r.read.pmem.flushes, 0);
        // Load factor steady: every deleted key was reinserted.
        assert_eq!(t.map.len() as u64, r.fill_count);
        let json = r.to_json().to_string_pretty();
        assert!(json.contains("\"latency\""), "{json}");
        assert!(json.contains("\"update\""), "{json}");
    }

    #[test]
    fn ycsb_c_is_read_only_under_both_dists() {
        for dist in KeyDist::ALL {
            let mut pm = SimPmem::new(4096, SimConfig::fast_test());
            let mut t = Dummy {
                map: Default::default(),
                cap: 4096,
            };
            let mut trace = RandomNum::new(4);
            let r = YcsbWorkload {
                load_factor: 0.25,
                ops: 200,
                mix: YcsbMix::C,
                dist,
                seed: 11,
            }
            .run(&mut pm, &mut t, &mut trace, |&k| k ^ 5);
            assert_eq!(r.read.ops, 200, "{dist:?}");
            assert_eq!(r.update.ops, 0, "{dist:?}");
        }
    }

    #[test]
    fn fill_stops_at_table_full() {
        struct Tiny;
        impl<P: Pmem> HashScheme<P, u64, u64> for Tiny {
            fn name(&self) -> &'static str {
                "tiny"
            }
            fn insert(&mut self, _pm: &mut P, _k: u64, _v: u64) -> Result<(), InsertError> {
                Err(InsertError::TableFull)
            }
            fn get(&self, _pm: &P, _k: &u64) -> Option<u64> {
                None
            }
            fn remove(&mut self, _pm: &mut P, _k: &u64) -> bool {
                false
            }
            fn len(&self, _pm: &P) -> u64 {
                0
            }
            fn capacity(&self) -> u64 {
                100
            }
            fn recover(&mut self, _pm: &mut P) {}
            fn check_consistency(&self, _pm: &P) -> Result<(), nvm_table::TableError> {
                Ok(())
            }
        }
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        let mut trace = RandomNum::new(2);
        let keys = Workload::paper(0.9).fill(&mut pm, &mut Tiny, &mut trace, |&k| k);
        assert!(keys.is_empty());
    }

    #[test]
    fn avg_metrics_divide() {
        let m = OpMetrics {
            ops: 4,
            total_ns: 400,
            llc_misses: 8,
            pmem: PmemStats {
                flushes: 12,
                ..Default::default()
            },
        };
        assert_eq!(m.avg_ns(), 100.0);
        assert_eq!(m.avg_llc_misses(), 2.0);
        assert_eq!(m.avg_flushes(), 3.0);
        assert_eq!(OpMetrics::default().avg_ns(), 0.0);
    }

    // Keep the unused imports meaningful for the integration-style test
    // below (ConsistencyMode/Region re-exported use is exercised in the
    // harness crate's tests).
    #[allow(dead_code)]
    fn _type_uses(_: ConsistencyMode, _: Region) {}
}
