//! A Zipf(α) sampler over `{0, …, n-1}` using an inverse-CDF table.
//!
//! Word frequencies in text corpora (and thus in the Bag-of-Words trace)
//! follow Zipf's law. A precomputed cumulative table plus binary search
//! gives exact sampling in O(log n) with O(n) setup — fine for the
//! ~141 k-entry vocabularies we model.

use rand::Rng;

/// Zipf-distributed ranks: `P(rank = k) ∝ 1 / (k+1)^alpha`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `alpha` (> 0).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!(alpha > 0.0, "non-positive exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// The YCSB request distribution: Zipf with the benchmark's default
    /// exponent 0.99 (Cooper et al., SoCC '10).
    pub fn ycsb(n: usize) -> Self {
        Zipf::new(n, 0.99)
    }

    /// Number of ranks.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ranks_in_support() {
        let z = Zipf::new(100, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn head_is_heavier_than_tail() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be roughly twice rank 1 and far above rank 100.
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > 10 * counts[100].max(1));
        // Harmonic mass check: top-10 ranks carry ~39 % at alpha=1, n=1000.
        let top10: u32 = counts[..10].iter().sum();
        let share = top10 as f64 / 100_000.0;
        assert!((0.30..0.50).contains(&share), "top-10 share {share}");
    }

    #[test]
    fn alpha_controls_skew() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let flat = Zipf::new(100, 0.2);
        let steep = Zipf::new(100, 2.0);
        let head = |z: &Zipf, rng: &mut ChaCha8Rng| {
            (0..20_000).filter(|_| z.sample(rng) == 0).count()
        };
        let flat_head = head(&flat, &mut rng);
        let steep_head = head(&steep, &mut rng);
        assert!(steep_head > 4 * flat_head, "{steep_head} vs {flat_head}");
    }

    #[test]
    fn ycsb_exponent_is_skewed_but_not_degenerate() {
        let z = Zipf::ycsb(10_000);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut head = 0u32;
        const N: u32 = 50_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // At alpha=0.99, n=10k, the top 1% of ranks draw roughly half
        // the requests — far above uniform's 1 %, far below all of them.
        let share = head as f64 / N as f64;
        assert!((0.25..0.75).contains(&share), "top-100 share {share}");
    }

    #[test]
    fn single_rank_support() {
        let z = Zipf::new(1, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
