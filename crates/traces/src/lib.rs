//! Workload traces and the measurement driver (paper §4.1–4.2).
//!
//! The paper evaluates on three real-world traces. One is a synthetic
//! construction we reproduce exactly; the other two are datasets we cannot
//! redistribute, so we generate key streams with the same documented shape
//! (see DESIGN.md's substitution table — the hash tables only ever see the
//! key distribution):
//!
//! * [`RandomNum`] — uniform random integers in `[0, 2^26)`, 16-byte items
//!   (the construction used by [26, 34] and §4.1).
//! * [`BagOfWords`] — PubMed-abstract-shaped `(DocID, WordID)` pairs:
//!   ~141 k-word vocabulary, Zipf-distributed word frequencies, lognormal
//!   document lengths; keys are `DocID ‖ WordID`, 16-byte items.
//! * [`Fingerprint`] — MD5 digests (computed with this workspace's own MD5)
//!   of synthetic file identities from a simulated snapshot server;
//!   16-byte keys, 32-byte items.
//!
//! [`Workload`] packages the paper's measurement protocol: fill the table
//! to a target load factor, then insert 1000 fresh items, query 1000
//! resident items, delete 1000 items, reporting per-op latency and L3
//! misses. [`YcsbWorkload`] layers the YCSB core mixes (A = 50/50
//! update-heavy, B = 95/5 read-heavy, C = read-only; uniform or Zipfian
//! key choice) over the same fill machinery.

mod bagofwords;
mod fingerprint;
mod randomnum;
mod workload;
mod zipf;

pub use bagofwords::BagOfWords;
pub use fingerprint::Fingerprint;
pub use randomnum::RandomNum;
pub use workload::{
    KeyDist, OpMetrics, Workload, WorkloadReport, YcsbMix, YcsbReport, YcsbWorkload,
};
pub use zipf::Zipf;

use nvm_hashfn::HashKey;

/// A stream of distinct keys.
///
/// Generators are deterministic in their seed and deduplicate internally,
/// so table semantics stay clean (the paper's Algorithm 1 assumes distinct
/// keys).
pub trait Trace {
    /// Key type stored in the table.
    type Key: HashKey;

    /// Trace name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Produces the next distinct key.
    fn next_key(&mut self) -> Self::Key;

    /// Produces `n` distinct keys.
    fn take_keys(&mut self, n: usize) -> Vec<Self::Key> {
        (0..n).map(|_| self.next_key()).collect()
    }
}
