//! The *Bag-of-Words* trace (paper §4.1) — synthetic equivalent.
//!
//! The paper uses the UCI Bag-of-Words PubMed-abstracts collection
//! (~8.2 M documents, 141,043-word vocabulary, ~730 M (doc, word) pairs)
//! and keys each hash item by the DocID‖WordID combination; items are 16
//! bytes. We do not redistribute the dataset; instead we generate a stream
//! with the same documented shape: per-document distinct word sets whose
//! words are Zipf-distributed over a PubMed-sized vocabulary and whose
//! set sizes follow a lognormal-ish distribution around the corpus mean
//! (~90 distinct words per abstract). Since a hash table is sensitive only
//! to the key distribution — and DocID‖WordID composites are near-unique
//! by construction either way — this preserves the trace's behaviour.

use crate::{Trace, Zipf};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// PubMed's published vocabulary size.
pub const PUBMED_VOCAB: usize = 141_043;

/// Mean distinct words per PubMed abstract (corpus ≈ 730 M pairs / 8.2 M
/// docs ≈ 89).
pub const MEAN_WORDS_PER_DOC: f64 = 89.0;

/// Synthetic PubMed-shaped `(DocID, WordID)` key stream.
#[derive(Debug, Clone)]
pub struct BagOfWords {
    rng: ChaCha8Rng,
    zipf: Zipf,
    doc_id: u32,
    /// Words already emitted for the current document.
    current_doc_words: HashSet<u32>,
    /// Distinct words remaining in the current document.
    remaining_in_doc: usize,
}

impl BagOfWords {
    /// Creates the trace with PubMed's published shape.
    pub fn new(seed: u64) -> Self {
        Self::with_vocab(seed, PUBMED_VOCAB)
    }

    /// Creates the trace with a custom vocabulary size (tests).
    pub fn with_vocab(seed: u64, vocab: usize) -> Self {
        BagOfWords {
            rng: ChaCha8Rng::seed_from_u64(seed),
            zipf: Zipf::new(vocab, 1.0),
            doc_id: 0,
            current_doc_words: HashSet::new(),
            remaining_in_doc: 0,
        }
    }

    /// Draws the next document's distinct-word count: lognormal-shaped,
    /// mean ≈ [`MEAN_WORDS_PER_DOC`], clamped to `[1, vocab]`.
    fn next_doc_len(&mut self) -> usize {
        // Box-Muller normal, then exponentiate: sigma 0.6 around
        // ln(mean) - sigma^2/2 keeps the arithmetic mean at the target.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let sigma = 0.6;
        let mu = MEAN_WORDS_PER_DOC.ln() - sigma * sigma / 2.0;
        let len = (mu + sigma * z).exp().round() as usize;
        len.clamp(1, self.zipf.support())
    }

    fn start_new_doc(&mut self) {
        self.doc_id += 1;
        self.current_doc_words.clear();
        self.remaining_in_doc = self.next_doc_len();
    }
}

impl Trace for BagOfWords {
    type Key = u64;

    fn name(&self) -> &'static str {
        "Bag-of-Words"
    }

    fn next_key(&mut self) -> u64 {
        if self.remaining_in_doc == 0 {
            self.start_new_doc();
        }
        // Draw a word not yet used in this document (rejection; the doc
        // length is clamped to the vocabulary so this terminates).
        let word = loop {
            let w = self.zipf.sample(&mut self.rng) as u32;
            if self.current_doc_words.insert(w) {
                break w;
            }
            // Heavy Zipf heads can make rejection slow for huge docs;
            // fall back to a uniform fresh word if the set is dense.
            if self.current_doc_words.len() * 2 > self.zipf.support() {
                let w = self.rng.gen_range(0..self.zipf.support() as u32);
                if self.current_doc_words.insert(w) {
                    break w;
                }
            }
        };
        self.remaining_in_doc -= 1;
        // DocID ‖ WordID, as in the paper.
        ((self.doc_id as u64) << 32) | word as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_distinct() {
        let mut t = BagOfWords::new(5);
        let keys = t.take_keys(20_000);
        let set: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn key_encodes_doc_and_word() {
        let mut t = BagOfWords::new(5);
        for _ in 0..5_000 {
            let k = t.next_key();
            let word = (k & 0xFFFF_FFFF) as usize;
            let doc = k >> 32;
            assert!(word < PUBMED_VOCAB);
            assert!(doc >= 1);
        }
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let mut t = BagOfWords::with_vocab(6, 10_000);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..50_000 {
            counts[(t.next_key() & 0xFFFF_FFFF) as usize] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let mid: u32 = counts[5000..5010].iter().sum();
        assert!(head > 20 * mid.max(1), "head {head} vs mid {mid}");
    }

    #[test]
    fn doc_lengths_average_near_target() {
        let mut t = BagOfWords::new(7);
        let keys = t.take_keys(100_000);
        let docs = (keys.last().unwrap() >> 32) as f64;
        let mean = 100_000.0 / docs;
        assert!(
            (MEAN_WORDS_PER_DOC * 0.7..MEAN_WORDS_PER_DOC * 1.3).contains(&mean),
            "mean words/doc {mean}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            BagOfWords::new(9).take_keys(500),
            BagOfWords::new(9).take_keys(500)
        );
    }
}
