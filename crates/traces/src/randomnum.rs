//! The *RandomNum* trace (paper §4.1).
//!
//! "We generate the random integer ranging from 0 to 2^26 and use the
//! generated integers as the keys of the hash items." Items are 16 bytes
//! (u64 key + u64 value). The stream is deduplicated so every emitted key
//! is distinct.

use crate::Trace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Uniform random integer keys in `[0, 2^26)`.
#[derive(Debug, Clone)]
pub struct RandomNum {
    rng: ChaCha8Rng,
    emitted: HashSet<u64>,
    bound: u64,
}

impl RandomNum {
    /// The paper's key range: `[0, 2^26)`.
    pub const DEFAULT_BOUND: u64 = 1 << 26;

    /// Creates the trace with the paper's range.
    pub fn new(seed: u64) -> Self {
        Self::with_bound(seed, Self::DEFAULT_BOUND)
    }

    /// Creates the trace with a custom exclusive upper bound.
    pub fn with_bound(seed: u64, bound: u64) -> Self {
        assert!(bound >= 2, "degenerate key range");
        RandomNum {
            rng: ChaCha8Rng::seed_from_u64(seed),
            emitted: HashSet::new(),
            bound,
        }
    }
}

impl Trace for RandomNum {
    type Key = u64;

    fn name(&self) -> &'static str {
        "RandomNum"
    }

    fn next_key(&mut self) -> u64 {
        assert!(
            (self.emitted.len() as u64) < self.bound,
            "key space exhausted"
        );
        loop {
            let k = self.rng.gen_range(0..self.bound);
            if self.emitted.insert(k) {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_in_range_and_distinct() {
        let mut t = RandomNum::new(1);
        let keys = t.take_keys(10_000);
        let set: HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len());
        assert!(keys.iter().all(|&k| k < RandomNum::DEFAULT_BOUND));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = RandomNum::new(7).take_keys(100);
        let b = RandomNum::new(7).take_keys(100);
        let c = RandomNum::new(8).take_keys(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn small_bound_exhausts_cleanly() {
        let mut t = RandomNum::with_bound(1, 16);
        let keys = t.take_keys(16);
        let set: HashSet<u64> = keys.into_iter().collect();
        assert_eq!(set.len(), 16); // drew the whole space
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn over_drawing_panics() {
        let mut t = RandomNum::with_bound(1, 4);
        t.take_keys(5);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(RandomNum::new(0).name(), "RandomNum");
    }
}
