fn main() {
    use nvm_traces::{Fingerprint, Trace};
    let t0 = std::time::Instant::now();
    let mut f = Fingerprint::new(3);
    let keys = f.take_keys(2000);
    println!("2000 fingerprint keys in {:?}, first={:02x?}", t0.elapsed(), &keys[0][..4]);
}
