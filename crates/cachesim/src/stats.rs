//! Access statistics for the cache hierarchy.

use crate::AccessKind;

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    pub hits: u64,
    pub misses: u64,
}

impl LevelStats {
    /// Hit ratio in [0, 1]; 0 if no accesses reached this level.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Hierarchy-wide statistics. A miss at level *i* is counted at *i* and the
/// access then probes level *i+1*; an access that misses the last level is a
/// memory access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub reads: u64,
    pub writes: u64,
    pub invalidations: u64,
    pub prefetches: u64,
    levels: Vec<LevelStats>,
}

impl CacheStats {
    pub(crate) fn new(num_levels: usize) -> Self {
        CacheStats {
            reads: 0,
            writes: 0,
            invalidations: 0,
            prefetches: 0,
            levels: vec![LevelStats::default(); num_levels],
        }
    }

    pub(crate) fn record_access(&mut self, kind: AccessKind) {
        match kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
    }

    pub(crate) fn record_hit(&mut self, level: usize) {
        self.levels[level].hits += 1;
    }

    pub(crate) fn record_miss(&mut self, level: usize) {
        self.levels[level].misses += 1;
    }

    pub(crate) fn record_invalidation(&mut self) {
        self.invalidations += 1;
    }

    pub(crate) fn record_prefetch(&mut self) {
        self.prefetches += 1;
    }

    pub(crate) fn reset(&mut self) {
        let n = self.levels.len();
        *self = CacheStats::new(n);
    }

    /// Per-level counters (0 = L1).
    pub fn level(&self, i: usize) -> LevelStats {
        self.levels[i]
    }

    /// All per-level counters, innermost (L1) first.
    pub fn levels(&self) -> &[LevelStats] {
        &self.levels
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Misses at the outermost (last-level) cache — the paper's "L3
    /// cache misses".
    pub fn llc_misses(&self) -> u64 {
        self.levels.last().map(|l| l.misses).unwrap_or(0)
    }

    /// Difference of two snapshots (`self - earlier`), for measuring a
    /// window of execution.
    ///
    /// Saturating like `PmemStats::delta_since` in `nvm-pmem`: a reset
    /// between the snapshot and now clamps each field to 0 instead of
    /// wrapping.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        assert_eq!(self.levels.len(), earlier.levels.len());
        CacheStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            levels: self
                .levels
                .iter()
                .zip(&earlier.levels)
                .map(|(a, b)| LevelStats {
                    hits: a.hits.saturating_sub(b.hits),
                    misses: a.misses.saturating_sub(b.misses),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_bounds() {
        let s = LevelStats { hits: 3, misses: 1 };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(LevelStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let mut a = CacheStats::new(2);
        a.record_access(AccessKind::Read);
        a.record_miss(0);
        a.record_miss(1);
        let snap = a.clone();
        a.record_access(AccessKind::Write);
        a.record_hit(0);
        let d = a.delta_since(&snap);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 1);
        assert_eq!(d.level(0).hits, 1);
        assert_eq!(d.level(0).misses, 0);
        assert_eq!(d.accesses(), 1);
    }

    /// Regression: reset between snapshot and delta clamps to zero
    /// rather than underflowing.
    #[test]
    fn delta_saturates_after_reset() {
        let mut a = CacheStats::new(2);
        a.record_access(AccessKind::Read);
        a.record_miss(0);
        a.record_hit(1);
        let snap = a.clone();
        a.reset();
        let d = a.delta_since(&snap);
        assert_eq!(d.reads, 0);
        assert_eq!(d.level(0).misses, 0);
        assert_eq!(d.level(1).hits, 0);
    }
}
