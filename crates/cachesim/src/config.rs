//! Cache hierarchy configuration.

use crate::LINE_BYTES;

/// Geometry of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    /// Total capacity in bytes. Must be a multiple of `ways * 64` and yield
    /// a power-of-two number of sets.
    pub size_bytes: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
}

impl LevelConfig {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        self.size_bytes / (self.ways * LINE_BYTES)
    }

    /// Total number of lines this level can hold.
    pub fn num_lines(&self) -> usize {
        self.size_bytes / LINE_BYTES
    }
}

/// Hardware prefetcher model.
///
/// The paper's locality argument leans on the sequential prefetcher:
/// "a single memory access can prefetch multiple cells belonging to the
/// same cacheline" and, on real Xeons, the L2 streamer pulls *subsequent*
/// lines of an ascending access stream, which is what makes scanning a
/// contiguous group cheap while scattered probes (path hashing) pay full
/// misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prefetcher {
    /// No prefetching: every new line costs a full miss.
    None,
    /// Fill line+1 on every memory access (simple adjacent-line prefetch).
    NextLine,
    /// Stream detection: after two consecutive ascending-line accesses,
    /// fill the next `depth` lines. Models the Xeon L2 streamer.
    Stream { depth: usize },
}

/// Full hierarchy configuration: levels ordered from L1 (index 0) outwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    pub levels: Vec<LevelConfig>,
    /// Hardware prefetcher model.
    pub prefetch: Prefetcher,
}

impl CacheConfig {
    /// The paper's testbed (Table 2): Intel Xeon E5-2620. Per-core 32 KB L1D
    /// and 256 KB L2, shared 15 MB L3 (the paper's workloads are
    /// single-threaded, so one core's view is the right model).
    pub fn xeon_e5_2620() -> Self {
        CacheConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                },
                LevelConfig {
                    size_bytes: 256 * 1024,
                    ways: 8,
                },
                LevelConfig {
                    size_bytes: 15 * 1024 * 1024 / 64 * 64, // 15 MB, line-rounded
                    ways: 20,
                },
            ],
            // The testbed's L2 streamer: the paper's contiguity argument
            // assumes it (see Prefetcher docs).
            prefetch: Prefetcher::Stream { depth: 4 },
        }
    }

    /// The Xeon hierarchy with prefetching disabled (ablation: how much of
    /// group sharing's advantage comes from the streamer).
    pub fn xeon_e5_2620_no_prefetch() -> Self {
        CacheConfig {
            prefetch: Prefetcher::None,
            ..Self::xeon_e5_2620()
        }
    }

    /// A small hierarchy for fast unit tests: 1 KB / 8 KB / 64 KB.
    pub fn tiny_for_tests() -> Self {
        CacheConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 1024,
                    ways: 2,
                },
                LevelConfig {
                    size_bytes: 8 * 1024,
                    ways: 4,
                },
                LevelConfig {
                    size_bytes: 64 * 1024,
                    ways: 8,
                },
            ],
            prefetch: Prefetcher::None,
        }
    }

    /// Checks that every level has a non-zero set count and associativity,
    /// and that levels grow monotonically outward. Set counts need not be
    /// powers of two (real sliced LLCs are not); indexing uses modulo.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("cache hierarchy needs at least one level".into());
        }
        let mut prev = 0usize;
        for (i, l) in self.levels.iter().enumerate() {
            if l.ways == 0 {
                return Err(format!("level {i}: zero ways"));
            }
            if l.size_bytes == 0 || l.size_bytes % (l.ways * LINE_BYTES) != 0 {
                return Err(format!(
                    "level {i}: size {} is not a multiple of ways*64",
                    l.size_bytes
                ));
            }
            if l.size_bytes < prev {
                return Err(format!("level {i} is smaller than level {}", i - 1));
            }
            prev = l.size_bytes;
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::xeon_e5_2620()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        CacheConfig::default().validate().unwrap();
        CacheConfig::tiny_for_tests().validate().unwrap();
    }

    #[test]
    fn xeon_geometry() {
        let c = CacheConfig::xeon_e5_2620();
        assert_eq!(c.levels[0].num_sets(), 64);
        assert_eq!(c.levels[1].num_sets(), 512);
        assert_eq!(c.levels[2].num_sets(), 12288); // 15 MB / (20 ways * 64 B)
        assert_eq!(c.levels[2].num_lines() * LINE_BYTES, c.levels[2].size_bytes);
    }

    #[test]
    fn rejects_zero_ways() {
        let c = CacheConfig {
            levels: vec![LevelConfig {
                size_bytes: 64,
                ways: 0,
            }],
            prefetch: Prefetcher::None,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_shrinking_levels() {
        let c = CacheConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 1024,
                    ways: 2,
                },
                LevelConfig {
                    size_bytes: 512,
                    ways: 2,
                },
            ],
            prefetch: Prefetcher::None,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(CacheConfig { levels: vec![], prefetch: Prefetcher::None }.validate().is_err());
    }
}
