//! A deterministic CPU cache hierarchy simulator.
//!
//! The ICPP 2018 group-hashing paper measures CPU cache efficiency with
//! hardware L3-miss counters (via PAPI). This crate replaces those counters
//! with a deterministic model: a configurable multi-level, set-associative,
//! LRU cache hierarchy with 64-byte lines and `clflush`-style invalidation.
//!
//! The model captures exactly the two effects the paper reasons about:
//!
//! 1. **Spatial locality** — probing contiguous cells touches few lines, so
//!    schemes whose collision-resolution cells are contiguous (linear
//!    probing, PFHT buckets, group hashing) take fewer misses than schemes
//!    whose probe sequences are scattered (path hashing).
//! 2. **Flush-induced invalidation** — `clflush` evicts the line, so the
//!    next access to the same address misses. Logging doubles the flushed
//!    footprint and therefore roughly doubles misses.
//!
//! The simulator is intentionally simple (no coherence, one core, inclusive
//! levels probed outer-to-inner on miss) but fully deterministic, so the
//! harness reproduces identical miss counts run-to-run.
//!
//! # Example
//!
//! ```
//! use nvm_cachesim::{CacheHierarchy, CacheConfig, AccessKind, HitLevel};
//!
//! let mut h = CacheHierarchy::new(CacheConfig::xeon_e5_2620());
//! assert_eq!(h.access(0x1000, AccessKind::Read), HitLevel::Memory);
//! assert_eq!(h.access(0x1008, AccessKind::Read), HitLevel::L1); // same line
//! h.invalidate(0x1000); // clflush
//! assert_eq!(h.access(0x1000, AccessKind::Read), HitLevel::Memory);
//! ```

mod config;
mod level;
mod stats;

pub use config::{CacheConfig, LevelConfig, Prefetcher};
pub use level::CacheLevel;
pub use stats::{CacheStats, LevelStats};

/// The width of a cache line in bytes. Fixed at 64, matching every x86
/// microarchitecture the paper considers.
pub const LINE_BYTES: usize = 64;

/// Log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// Whether a simulated access reads or writes the line.
///
/// The distinction only affects statistics (and dirty-line accounting in
/// higher layers); the replacement policy treats both identically, like a
/// write-allocate cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

/// The innermost level that satisfied an access.
///
/// `Memory` means the access missed every simulated level and went to
/// DRAM/NVM. Ordering is by distance from the core: `L1 < L2 < L3 < Memory`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    L1,
    L2,
    L3,
    Memory,
}

impl HitLevel {
    /// Index of this level (L1 = 0), or `None` for `Memory`.
    pub fn level_index(self) -> Option<usize> {
        match self {
            HitLevel::L1 => Some(0),
            HitLevel::L2 => Some(1),
            HitLevel::L3 => Some(2),
            HitLevel::Memory => None,
        }
    }

    fn from_index(i: usize) -> HitLevel {
        match i {
            0 => HitLevel::L1,
            1 => HitLevel::L2,
            2 => HitLevel::L3,
            _ => HitLevel::Memory,
        }
    }
}

/// A multi-level cache hierarchy.
///
/// Levels are probed from L1 outwards; on a miss at every level the line is
/// filled into all levels (mostly-inclusive behaviour). On a hit at level
/// *i*, the line is filled into levels closer than *i*.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    stats: CacheStats,
    prefetch: Prefetcher,
    /// Stream-detector state: last line touched and current ascending-run
    /// length.
    last_line: usize,
    run: u32,
}

impl CacheHierarchy {
    /// Builds a hierarchy from `config`. Panics if the configuration is
    /// invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let levels = config.levels.iter().map(CacheLevel::new).collect::<Vec<_>>();
        let n = levels.len();
        CacheHierarchy {
            levels,
            stats: CacheStats::new(n),
            prefetch: config.prefetch,
            last_line: usize::MAX,
            run: 0,
        }
    }

    /// Fills `line` into every level without counting an access (hardware
    /// prefetch is asynchronous and off the critical path).
    fn prefetch_line(&mut self, line: usize) {
        for level in &mut self.levels {
            level.insert(line);
        }
        self.stats.record_prefetch();
    }

    /// Simulates one access to byte address `addr` and returns the innermost
    /// level that hit. The full line containing `addr` is brought into every
    /// level closer than the hit level.
    pub fn access(&mut self, addr: usize, kind: AccessKind) -> HitLevel {
        let line = addr >> LINE_SHIFT;
        self.stats.record_access(kind);
        let mut hit = HitLevel::Memory;
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.touch(line) {
                hit = HitLevel::from_index(i);
                self.stats.record_hit(i);
                break;
            }
            self.stats.record_miss(i);
        }
        // Fill the line into every level that missed (those closer than the
        // hit level).
        let fill_upto = hit.level_index().unwrap_or(self.levels.len());
        for level in &mut self.levels[..fill_upto] {
            level.insert(line);
        }
        // Hardware prefetcher.
        match self.prefetch {
            Prefetcher::None => {}
            Prefetcher::NextLine => {
                if hit == HitLevel::Memory {
                    self.prefetch_line(line + 1);
                }
            }
            Prefetcher::Stream { depth } => {
                // Track ascending-line runs; repeats within a line do not
                // break the stream.
                if line == self.last_line.wrapping_add(1) {
                    self.run += 1;
                } else if line != self.last_line {
                    self.run = 0;
                }
                if self.run >= 1 {
                    // Stream confirmed: pull the lines ahead.
                    for d in 1..=depth {
                        self.prefetch_line(line + d);
                    }
                }
            }
        }
        self.last_line = line;
        hit
    }

    /// Invalidates the line containing `addr` from every level, modelling
    /// `clflush` (which flushes *and* invalidates the line).
    pub fn invalidate(&mut self, addr: usize) {
        let line = addr >> LINE_SHIFT;
        for level in &mut self.levels {
            level.evict_line(line);
        }
        self.stats.record_invalidation();
    }

    /// Returns `true` if the line containing `addr` is resident at `level`
    /// (0 = L1). Intended for tests and debugging.
    pub fn is_resident(&self, addr: usize, level: usize) -> bool {
        self.levels[level].contains(addr >> LINE_SHIFT)
    }

    /// Number of simulated levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics but keeps cache contents (useful for excluding a
    /// warm-up phase from measurements).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Empties every level and resets statistics.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            level.clear();
        }
        self.stats.reset();
    }

    /// Misses at the outermost (last-level) cache since the last reset —
    /// the quantity the paper reports as "L3 cache misses".
    pub fn llc_misses(&self) -> u64 {
        let last = self.levels.len() - 1;
        self.stats.level(last).misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        // One level: 4 sets x 2 ways = 8 lines.
        CacheHierarchy::new(CacheConfig {
            levels: vec![LevelConfig {
                size_bytes: 8 * LINE_BYTES,
                ways: 2,
            }],
            prefetch: Prefetcher::None,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut h = tiny();
        assert_eq!(h.access(0, AccessKind::Read), HitLevel::Memory);
        assert_eq!(h.access(0, AccessKind::Read), HitLevel::L1);
        assert_eq!(h.access(63, AccessKind::Read), HitLevel::L1); // same line
        assert_eq!(h.access(64, AccessKind::Read), HitLevel::Memory); // next line
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut h = tiny();
        // 4 sets => lines 0, 4, 8 map to set 0. 2 ways.
        let a = 0;
        let b = 4 * LINE_BYTES;
        let c = 8 * LINE_BYTES;
        h.access(a, AccessKind::Read);
        h.access(b, AccessKind::Read);
        h.access(a, AccessKind::Read); // a is now MRU
        h.access(c, AccessKind::Read); // evicts b
        assert_eq!(h.access(a, AccessKind::Read), HitLevel::L1);
        assert_eq!(h.access(b, AccessKind::Read), HitLevel::Memory);
    }

    #[test]
    fn invalidate_forces_miss() {
        let mut h = tiny();
        h.access(128, AccessKind::Write);
        assert_eq!(h.access(128, AccessKind::Read), HitLevel::L1);
        h.invalidate(130); // same line as 128
        assert_eq!(h.access(128, AccessKind::Read), HitLevel::Memory);
        assert_eq!(h.stats().invalidations, 1);
    }

    #[test]
    fn hierarchy_fill_and_l2_hit() {
        // L1: 2 lines direct-mapped-ish, L2: 16 lines.
        let mut h = CacheHierarchy::new(CacheConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 2 * LINE_BYTES,
                    ways: 1,
                },
                LevelConfig {
                    size_bytes: 16 * LINE_BYTES,
                    ways: 4,
                },
            ],
            prefetch: Prefetcher::None,
        });
        let a = 0;
        let b = 2 * LINE_BYTES; // conflicts with a in L1 (2 sets, way 1)
        assert_eq!(h.access(a, AccessKind::Read), HitLevel::Memory);
        assert_eq!(h.access(b, AccessKind::Read), HitLevel::Memory); // evicts a from L1
        assert_eq!(h.access(a, AccessKind::Read), HitLevel::L2); // still in L2
        assert_eq!(h.access(a, AccessKind::Read), HitLevel::L1); // refilled
    }

    #[test]
    fn stats_accumulate() {
        let mut h = tiny();
        h.access(0, AccessKind::Read);
        h.access(0, AccessKind::Write);
        h.access(64, AccessKind::Read);
        let s = h.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.level(0).hits, 1);
        assert_eq!(s.level(0).misses, 2);
        assert_eq!(h.llc_misses(), 2);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = tiny();
        h.access(0, AccessKind::Read);
        h.reset_stats();
        assert_eq!(h.stats().reads, 0);
        assert_eq!(h.access(0, AccessKind::Read), HitLevel::L1);
    }

    #[test]
    fn clear_empties_contents() {
        let mut h = tiny();
        h.access(0, AccessKind::Read);
        h.clear();
        assert_eq!(h.access(0, AccessKind::Read), HitLevel::Memory);
    }

    #[test]
    fn default_config_residency() {
        let mut h = CacheHierarchy::new(CacheConfig::xeon_e5_2620());
        h.access(0x4_0000, AccessKind::Read);
        assert!(h.is_resident(0x4_0000, 0));
        assert!(h.is_resident(0x4_0000, 1));
        assert!(h.is_resident(0x4_0000, 2));
    }

    #[test]
    fn next_line_prefetcher_pulls_next_line() {
        let mut h = CacheHierarchy::new(CacheConfig {
            levels: vec![LevelConfig {
                size_bytes: 16 * LINE_BYTES,
                ways: 4,
            }],
            prefetch: Prefetcher::NextLine,
        });
        assert_eq!(h.access(0, AccessKind::Read), HitLevel::Memory);
        // Line 1 was prefetched.
        assert_eq!(h.access(LINE_BYTES, AccessKind::Read), HitLevel::L1);
        assert_eq!(h.stats().prefetches, 1);
        // With next-line-only prefetch, a cold sequential scan misses
        // every other line.
        let mut misses = 0;
        for addr in (1024..1024 + 8 * LINE_BYTES).step_by(LINE_BYTES) {
            if h.access(addr, AccessKind::Read) == HitLevel::Memory {
                misses += 1;
            }
        }
        assert_eq!(misses, 4);
    }

    #[test]
    fn stream_prefetcher_hides_sequential_scans() {
        let mut h = CacheHierarchy::new(CacheConfig {
            levels: vec![LevelConfig {
                size_bytes: 64 * LINE_BYTES,
                ways: 4,
            }],
            prefetch: Prefetcher::Stream { depth: 4 },
        });
        // Cold sequential scan of 32 lines: the stream locks on after the
        // second line; only the first couple of lines miss.
        let mut misses = 0;
        for addr in (0..32 * LINE_BYTES).step_by(LINE_BYTES) {
            if h.access(addr, AccessKind::Read) == HitLevel::Memory {
                misses += 1;
            }
        }
        assert!(misses <= 3, "sequential scan missed {misses} lines");
        assert!(h.stats().prefetches > 0);

        // Random (non-ascending) accesses never trigger the streamer.
        let before = h.stats().prefetches;
        h.access(100 * LINE_BYTES, AccessKind::Read);
        h.access(50 * LINE_BYTES, AccessKind::Read);
        h.access(200 * LINE_BYTES, AccessKind::Read);
        assert_eq!(h.stats().prefetches, before);
    }

    #[test]
    fn stream_survives_intra_line_repeats() {
        let mut h = CacheHierarchy::new(CacheConfig {
            levels: vec![LevelConfig {
                size_bytes: 64 * LINE_BYTES,
                ways: 4,
            }],
            prefetch: Prefetcher::Stream { depth: 2 },
        });
        // Access pattern like a cell scan: several reads per line, then
        // the next line.
        let mut misses = 0;
        for line in 0..16usize {
            for word in 0..8 {
                if h.access(line * LINE_BYTES + word * 8, AccessKind::Read) == HitLevel::Memory {
                    misses += 1;
                }
            }
        }
        assert!(misses <= 2, "repeat-heavy scan missed {misses} lines");
    }

    #[test]
    fn sequential_scan_hits_within_line() {
        let mut h = tiny();
        let mut misses = 0;
        for addr in (0..256).step_by(8) {
            if h.access(addr, AccessKind::Read) == HitLevel::Memory {
                misses += 1;
            }
        }
        // 256 bytes = 4 lines => exactly 4 cold misses.
        assert_eq!(misses, 4);
    }
}
