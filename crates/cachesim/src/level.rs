//! A single set-associative cache level with true-LRU replacement.

use crate::config::LevelConfig;

/// Sentinel tag meaning "way is empty".
const EMPTY: u64 = u64::MAX;

/// One cache level. Tags are full line numbers (address >> 6), so distinct
/// lines never alias; sets are indexed by `line % num_sets`.
///
/// LRU is tracked with a per-level monotonic counter and per-way timestamps;
/// ties are impossible because the counter is bumped on every touch.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    ways: usize,
    sets: usize,
    /// `sets * ways` tags, row-major by set.
    tags: Vec<u64>,
    /// Timestamp of last touch, parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
}

impl CacheLevel {
    pub fn new(config: &LevelConfig) -> Self {
        let sets = config.num_sets();
        let ways = config.ways;
        CacheLevel {
            ways,
            sets,
            tags: vec![EMPTY; sets * ways],
            stamps: vec![0; sets * ways],
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets as u64) as usize;
        let start = set * self.ways;
        start..start + self.ways
    }

    /// If `line` is resident, refreshes its LRU stamp and returns `true`.
    #[inline]
    pub fn touch(&mut self, line: usize) -> bool {
        let line = line as u64;
        let range = self.set_range(line);
        self.tick += 1;
        for i in range {
            if self.tags[i] == line {
                self.stamps[i] = self.tick;
                return true;
            }
        }
        false
    }

    /// Inserts `line`, evicting the LRU way of its set if necessary.
    /// Idempotent if the line is already present (refreshes its stamp).
    #[inline]
    pub fn insert(&mut self, line: usize) {
        let line = line as u64;
        let range = self.set_range(line);
        self.tick += 1;
        let mut victim = range.start;
        let mut victim_stamp = u64::MAX;
        for i in range {
            if self.tags[i] == line {
                self.stamps[i] = self.tick;
                return;
            }
            if self.tags[i] == EMPTY {
                // Empty way always wins over eviction.
                victim = i;
                victim_stamp = 0;
            } else if self.stamps[i] < victim_stamp {
                victim = i;
                victim_stamp = self.stamps[i];
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.tick;
    }

    /// Removes `line` if present (clflush invalidation).
    #[inline]
    pub fn evict_line(&mut self, line: usize) {
        let line = line as u64;
        let range = self.set_range(line);
        for i in range {
            if self.tags[i] == line {
                self.tags[i] = EMPTY;
                self.stamps[i] = 0;
                return;
            }
        }
    }

    /// Residency check without touching LRU state.
    pub fn contains(&self, line: usize) -> bool {
        let line = line as u64;
        self.set_range(line).any(|i| self.tags[i] == line)
    }

    /// Number of resident lines (test/debug aid).
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Empties the level.
    pub fn clear(&mut self) {
        self.tags.fill(EMPTY);
        self.stamps.fill(0);
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(sets: usize, ways: usize) -> CacheLevel {
        CacheLevel::new(&LevelConfig {
            size_bytes: sets * ways * crate::LINE_BYTES,
            ways,
        })
    }

    #[test]
    fn insert_then_touch() {
        let mut l = level(4, 2);
        assert!(!l.touch(7));
        l.insert(7);
        assert!(l.touch(7));
        assert!(l.contains(7));
    }

    #[test]
    fn lru_order_respected() {
        let mut l = level(1, 3); // one set, 3 ways
        l.insert(1);
        l.insert(2);
        l.insert(3);
        l.touch(1); // order now: 2 (LRU), 3, 1
        l.insert(4); // evicts 2
        assert!(!l.contains(2));
        assert!(l.contains(1) && l.contains(3) && l.contains(4));
    }

    #[test]
    fn empty_way_preferred_over_eviction() {
        let mut l = level(1, 2);
        l.insert(1);
        l.insert(2); // fills the empty way; 1 must survive
        assert!(l.contains(1));
        assert!(l.contains(2));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut l = level(2, 2);
        l.insert(5);
        l.insert(5);
        assert_eq!(l.occupancy(), 1);
    }

    #[test]
    fn evict_line_removes_only_target() {
        let mut l = level(1, 2);
        l.insert(1);
        l.insert(2);
        l.evict_line(1);
        assert!(!l.contains(1));
        assert!(l.contains(2));
        assert_eq!(l.occupancy(), 1);
    }

    #[test]
    fn sets_do_not_interfere() {
        let mut l = level(4, 1); // direct mapped
        l.insert(0);
        l.insert(1);
        l.insert(2);
        l.insert(3);
        assert_eq!(l.occupancy(), 4);
        l.insert(4); // maps to set 0, evicts line 0 only
        assert!(!l.contains(0));
        assert!(l.contains(1) && l.contains(2) && l.contains(3) && l.contains(4));
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut l = level(8, 4);
        for line in 0..10_000usize {
            l.insert(line.wrapping_mul(2654435761) % 4096);
        }
        assert!(l.occupancy() <= l.capacity_lines());
    }

    #[test]
    fn clear_resets() {
        let mut l = level(2, 2);
        l.insert(9);
        l.clear();
        assert_eq!(l.occupancy(), 0);
        assert!(!l.contains(9));
    }
}
