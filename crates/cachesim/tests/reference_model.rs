//! Model-based testing: the optimized set-associative LRU level must
//! behave identically to a naive reference implementation (per-set
//! ordered lists) on arbitrary access traces.

use nvm_cachesim::{CacheLevel, LevelConfig, LINE_BYTES};
use proptest::prelude::*;
use std::collections::VecDeque;

/// The obviously-correct reference: per-set MRU-ordered deques.
struct RefCache {
    sets: Vec<VecDeque<usize>>,
    ways: usize,
}

impl RefCache {
    fn new(n_sets: usize, ways: usize) -> Self {
        RefCache {
            sets: (0..n_sets).map(|_| VecDeque::new()).collect(),
            ways,
        }
    }

    fn set_of(&self, line: usize) -> usize {
        line % self.sets.len()
    }

    fn touch(&mut self, line: usize) -> bool {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push_front(line);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, line: usize) {
        let s = self.set_of(line);
        if self.touch(line) {
            return;
        }
        let set = &mut self.sets[s];
        if set.len() == self.ways {
            set.pop_back();
        }
        set.push_front(line);
    }

    fn evict(&mut self, line: usize) {
        let s = self.set_of(line);
        self.sets[s].retain(|&l| l != line);
    }

    fn contains(&self, line: usize) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    /// touch-then-insert-on-miss — what the hierarchy does per access.
    Access(usize),
    Evict(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(Op::Access),
            (0usize..64).prop_map(Op::Evict),
        ],
        1..600,
    )
}

proptest! {
    #[test]
    fn level_matches_reference(ops in ops(), sets in 1usize..9, ways in 1usize..5) {
        // Round sets to what the config accepts (any non-zero works).
        let mut level = CacheLevel::new(&LevelConfig {
            size_bytes: sets * ways * LINE_BYTES,
            ways,
        });
        let mut reference = RefCache::new(sets, ways);

        for op in ops {
            match op {
                Op::Access(line) => {
                    let hit = level.touch(line);
                    let ref_hit = reference.touch(line);
                    prop_assert_eq!(hit, ref_hit, "hit mismatch on line {}", line);
                    if !hit {
                        level.insert(line);
                        reference.insert(line);
                    }
                }
                Op::Evict(line) => {
                    level.evict_line(line);
                    reference.evict(line);
                }
            }
        }

        // Final residency agrees on every line.
        for line in 0..64 {
            prop_assert_eq!(
                level.contains(line),
                reference.contains(line),
                "residency mismatch on line {}", line
            );
        }
    }
}
