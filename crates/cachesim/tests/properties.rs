//! Property-based tests for the cache simulator.

use nvm_cachesim::{AccessKind, CacheConfig, CacheHierarchy, HitLevel, LevelConfig, Prefetcher, LINE_BYTES};
use proptest::prelude::*;
use std::collections::HashSet;

fn small_config() -> CacheConfig {
    CacheConfig {
        levels: vec![
            LevelConfig {
                size_bytes: 4 * 2 * LINE_BYTES,
                ways: 2,
            },
            LevelConfig {
                size_bytes: 8 * 4 * LINE_BYTES,
                ways: 4,
            },
        ],
        prefetch: Prefetcher::None,
    }
}

proptest! {
    /// An access immediately followed by an access to the same line always
    /// hits L1 (nothing can evict it in between).
    #[test]
    fn immediate_reaccess_hits_l1(addrs in prop::collection::vec(0usize..1 << 20, 1..200)) {
        let mut h = CacheHierarchy::new(small_config());
        for a in addrs {
            h.access(a, AccessKind::Read);
            prop_assert_eq!(h.access(a, AccessKind::Read), HitLevel::L1);
        }
    }

    /// The working set that fits in L1 never misses after a single warm-up
    /// pass, regardless of access order.
    #[test]
    fn resident_working_set_never_misses(order in prop::collection::vec(0usize..4, 64)) {
        // 4 lines spread across distinct sets of the 4-set L1.
        let lines = [0usize, 1, 2, 3];
        let mut h = CacheHierarchy::new(small_config());
        for &l in &lines {
            h.access(l * LINE_BYTES, AccessKind::Read);
        }
        for &i in &order {
            prop_assert_eq!(h.access(lines[i] * LINE_BYTES, AccessKind::Read), HitLevel::L1);
        }
    }

    /// Miss counts at the LLC never exceed the number of distinct lines
    /// touched when the distinct-line working set fits in the LLC.
    #[test]
    fn llc_misses_bounded_by_distinct_lines(addrs in prop::collection::vec(0usize..32 * LINE_BYTES, 1..500)) {
        // 32 distinct lines fit in the 32-line L2 (LLC here).
        let mut h = CacheHierarchy::new(small_config());
        let mut distinct = HashSet::new();
        for &a in &addrs {
            h.access(a, AccessKind::Read);
            distinct.insert(a / LINE_BYTES);
        }
        prop_assert!(h.llc_misses() <= distinct.len() as u64);
    }

    /// Invalidation (clflush) guarantees the next access to that line is a
    /// full memory access.
    #[test]
    fn invalidate_then_access_is_memory(addr in 0usize..1 << 20, noise in prop::collection::vec(0usize..1 << 20, 0..50)) {
        let mut h = CacheHierarchy::new(small_config());
        for n in noise {
            h.access(n, AccessKind::Write);
        }
        h.access(addr, AccessKind::Write);
        h.invalidate(addr);
        prop_assert_eq!(h.access(addr, AccessKind::Read), HitLevel::Memory);
    }

    /// Stats bookkeeping: per-level hits+misses partition correctly (every
    /// access hits some level or memory; levels beyond a hit are untouched).
    #[test]
    fn stats_partition(addrs in prop::collection::vec(0usize..1 << 16, 1..300)) {
        let mut h = CacheHierarchy::new(small_config());
        for a in addrs.iter() {
            h.access(*a, AccessKind::Read);
        }
        let s = h.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        // L1 sees every access.
        prop_assert_eq!(s.level(0).hits + s.level(0).misses, addrs.len() as u64);
        // L2 sees exactly the L1 misses.
        prop_assert_eq!(s.level(1).hits + s.level(1).misses, s.level(0).misses);
    }
}
