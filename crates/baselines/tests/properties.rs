//! Property-based tests for the baseline schemes.

use nvm_baselines::{LinearProbing, PathHash, Pfht};
use nvm_pmem::{Region, SimConfig, SimPmem};
use nvm_table::{ConsistencyMode, HashScheme};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u16, u64),
    Remove(u16),
    Get(u16),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0u16..200), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (0u16..200).prop_map(Op::Remove),
            (0u16..200).prop_map(Op::Get),
        ],
        1..250,
    )
}

/// Drives any scheme against a HashMap oracle, then checks consistency.
fn drive<S: HashScheme<SimPmem, u64, u64>>(
    pm: &mut SimPmem,
    table: &mut S,
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let k = k as u64;
                if oracle.contains_key(&k) {
                    continue;
                }
                if table.insert(pm, k, v).is_ok() {
                    oracle.insert(k, v);
                }
            }
            Op::Remove(k) => {
                let k = k as u64;
                prop_assert_eq!(table.remove(pm, &k), oracle.remove(&k).is_some());
            }
            Op::Get(k) => {
                let k = k as u64;
                prop_assert_eq!(table.get(pm, &k), oracle.get(&k).copied());
            }
        }
    }
    prop_assert_eq!(table.len(pm), oracle.len() as u64);
    table.check_consistency(pm).map_err(|e| TestCaseError::fail(e.to_string()))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_probing_oracle(ops in ops_strategy()) {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            let size = LinearProbing::<SimPmem, u64, u64>::required_size(512);
            let mut pm = SimPmem::new(size, SimConfig::fast_test());
            let mut t =
                LinearProbing::create(&mut pm, Region::new(0, size), 512, 3, mode).unwrap();
            drive(&mut pm, &mut t, &ops)?;
        }
    }

    #[test]
    fn pfht_oracle(ops in ops_strategy()) {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            let size = Pfht::<SimPmem, u64, u64>::required_size(128, 16);
            let mut pm = SimPmem::new(size, SimConfig::fast_test());
            let mut t =
                Pfht::create(&mut pm, Region::new(0, size), 128, 16, 3, mode).unwrap();
            drive(&mut pm, &mut t, &ops)?;
        }
    }

    #[test]
    fn path_hash_oracle(ops in ops_strategy()) {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            let size = PathHash::<SimPmem, u64, u64>::required_size(9, 6);
            let mut pm = SimPmem::new(size, SimConfig::fast_test());
            let mut t =
                PathHash::create(&mut pm, Region::new(0, size), 9, 6, 3, mode).unwrap();
            drive(&mut pm, &mut t, &ops)?;
        }
    }

    /// Linear probing's probe invariant survives arbitrary interleaved
    /// deletes (the backward shift is the subtle part).
    #[test]
    fn linear_delete_storm(keys in prop::collection::hash_set(0u64..300, 30..120), drop_every in 2usize..5) {
        let size = LinearProbing::<SimPmem, u64, u64>::required_size(512);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut t = LinearProbing::create(
            &mut pm,
            Region::new(0, size),
            512,
            3,
            ConsistencyMode::None,
        )
        .unwrap();
        let keys: Vec<u64> = keys.into_iter().collect();
        for &k in &keys {
            t.insert(&mut pm, k, k).unwrap();
        }
        for (i, &k) in keys.iter().enumerate() {
            if i % drop_every == 0 {
                prop_assert!(t.remove(&mut pm, &k));
                t.check_consistency(&pm).map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
        }
        for (i, &k) in keys.iter().enumerate() {
            let expect = if i % drop_every == 0 { None } else { Some(k) };
            prop_assert_eq!(t.get(&pm, &k), expect);
        }
    }

    /// PFHT displacement never loses or duplicates items even under heavy
    /// pressure near capacity.
    #[test]
    fn pfht_displacement_pressure(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let size = Pfht::<SimPmem, u64, u64>::required_size(32, 8); // 136 cells
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let mut t = Pfht::create(
            &mut pm,
            Region::new(0, size),
            32,
            8,
            seed,
            ConsistencyMode::None,
        )
        .unwrap();
        let mut present: HashMap<u64, u64> = HashMap::new();
        for _ in 0..600 {
            let k: u64 = rng.gen_range(0..250);
            if present.remove(&k).is_some() {
                prop_assert!(t.remove(&mut pm, &k));
            } else if t.insert(&mut pm, k, k + 7).is_ok() {
                present.insert(k, k + 7);
            }
        }
        for (&k, &v) in &present {
            prop_assert_eq!(t.get(&pm, &k), Some(v));
        }
        t.check_consistency(&pm).map_err(|e| TestCaseError::fail(e.to_string()))?;
    }
}
