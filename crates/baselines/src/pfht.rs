//! PFHT — the PCM-friendly hash table (Debnath et al., INFLOW/OSR 2015/16).
//!
//! A cuckoo-hashing variant tuned for NVM's expensive writes:
//!
//! * buckets of 4 cells (one or two cachelines), two hash functions;
//! * an insert tries both candidate buckets, then performs **at most one
//!   displacement** (moving one resident item to its alternate bucket) —
//!   never the long cascading eviction chains of classic cuckoo hashing;
//! * items that still do not fit go to a **stash** sized at 3 % of the
//!   table, searched linearly.
//!
//! The paper compares group hashing against PFHT bare and with undo
//! logging (PFHT-L).
//!
//! Ops-layer only: bucket/stash geometry is a pure
//! [`PfhtPlan`](nvm_table::probe::PfhtPlan) and every committed write goes
//! through the shared [`CellStore`] + [`Journal`] primitives.

use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::probe::PfhtPlan;
use nvm_table::{
    BatchError, BatchSession, CellArray, CellStore, ConsistencyMode, HashScheme, InsertError,
    Journal, MigrationSource, PmemBitmap, TableError, TableHeader,
};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Magic word ("PFHT0001").
const MAGIC: u64 = 0x5046_4854_3030_3031;

/// Cells per bucket (the published design).
pub const BUCKET_CELLS: u64 = 4;

/// Stash fraction: 3 % of the main table.
pub const STASH_PERCENT: u64 = 3;

/// Undo-log capacity: an insert touches at most two cells (+bitmap words,
/// count); deletes one.
const LOG_RECORDS: usize = 16;

/// The PFHT table: `n_buckets * 4` main cells plus a stash.
#[derive(Debug)]
pub struct Pfht<P: Pmem, K: HashKey, V: Pod> {
    plan: PfhtPlan,
    seed: u64,
    hash: HashPair,
    header: TableHeader,
    /// Occupancy + cells for main cells followed by stash cells.
    store: CellStore<K, V>,
    journal: Journal,
    /// Probe/occupancy/displacement recording (same schema as group
    /// hashing). Pure DRAM arithmetic; never touches the pool.
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> Pfht<P, K, V> {
    /// Splits a total cell budget into (buckets, stash cells): the main
    /// table takes the largest power-of-two bucket count fitting the
    /// budget, and the stash is the published "extra stash with 3 % size
    /// of the hash table" — *on top*, exactly as the paper configures
    /// PFHT (so PFHT's total footprint runs ≤3 % over the nominal budget,
    /// the same allowance the paper grants it).
    pub fn geometry_for(total_cells: u64) -> (u64, u64) {
        assert!(total_cells >= 2 * BUCKET_CELLS, "table too small for PFHT");
        let n_buckets = {
            let b = total_cells / BUCKET_CELLS;
            if b.is_power_of_two() {
                b
            } else {
                b.next_power_of_two() / 2
            }
        }
        .max(1);
        let stash = (n_buckets * BUCKET_CELLS * STASH_PERCENT / 100).max(1);
        (n_buckets, stash)
    }

    fn total_cells(n_buckets: u64, stash_cells: u64) -> u64 {
        n_buckets * BUCKET_CELLS + stash_cells
    }

    fn log_bytes() -> usize {
        nvm_wal::UndoLog::region_size(LOG_RECORDS, CellArray::<K, V>::CELL_SIZE.max(8))
    }

    fn layout(region: Region, total: u64) -> (Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap = alloc.alloc_lines(PmemBitmap::region_size(total).max(8));
        let cells = alloc.alloc_lines(CellArray::<K, V>::region_size(total));
        let log = alloc.alloc_lines(Self::log_bytes());
        (header, bitmap, cells, log)
    }

    /// Pool bytes needed for the given geometry.
    pub fn required_size(n_buckets: u64, stash_cells: u64) -> usize {
        let total = Self::total_cells(n_buckets, stash_cells);
        TableHeader::SIZE
            + PmemBitmap::region_size(total).max(8)
            + CellArray::<K, V>::region_size(total)
            + Self::log_bytes()
            + 4 * CACHELINE
    }

    fn assemble(
        region: Region,
        n_buckets: u64,
        stash_cells: u64,
        seed: u64,
        journal: Journal,
        header: TableHeader,
    ) -> Self {
        let total = Self::total_cells(n_buckets, stash_cells);
        let (_, b, c, _) = Self::layout(region, total);
        Pfht {
            plan: PfhtPlan::new(n_buckets, BUCKET_CELLS, stash_cells),
            seed,
            hash: HashPair::from_seed(seed),
            header,
            store: CellStore::attach(b, c, total),
            journal,
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(2 * BUCKET_CELLS as usize),
            region,
            _marker: PhantomData,
        }
    }

    /// Creates a fresh PFHT (`n_buckets` a power of two).
    pub fn create(
        pm: &mut P,
        region: Region,
        n_buckets: u64,
        stash_cells: u64,
        seed: u64,
        mode: ConsistencyMode,
    ) -> Result<Self, TableError> {
        if !n_buckets.is_power_of_two() {
            return Err(TableError::Config(format!(
                "bucket count {n_buckets} is not a power of two"
            )));
        }
        if stash_cells == 0 {
            return Err(TableError::Config(
                "stash must have at least one cell".into(),
            ));
        }
        if region.len < Self::required_size(n_buckets, stash_cells) {
            return Err(TableError::RegionTooSmall {
                have: region.len,
                need: Self::required_size(n_buckets, stash_cells),
            });
        }
        let total = Self::total_cells(n_buckets, stash_cells);
        let (h_r, b, c, log_r) = Self::layout(region, total);
        CellStore::<K, V>::create(pm, b, c, total);
        let journal = Journal::create(pm, mode, log_r);
        let mode_flag = matches!(mode, ConsistencyMode::UndoLog) as u64;
        let header =
            TableHeader::create(pm, h_r, MAGIC, seed, &[n_buckets, stash_cells, mode_flag]);
        Ok(Self::assemble(region, n_buckets, stash_cells, seed, journal, header))
    }

    /// Header location; see `LinearProbing::header_region` for why this
    /// bypasses `layout`.
    fn header_region(region: Region) -> Region {
        Region::new(nvm_pmem::align_up(region.off, CACHELINE), TableHeader::SIZE)
    }

    /// Re-opens an existing PFHT.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, TableError> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err(TableError::Corrupt(
                "region too small for a table header".into(),
            ));
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let n_buckets = header.geometry(pm, 0);
        let stash_cells = header.geometry(pm, 1);
        if !n_buckets.is_power_of_two()
            || stash_cells == 0
            || region.len < Self::required_size(n_buckets, stash_cells)
        {
            return Err(TableError::Corrupt(
                "persisted geometry does not fit the region".into(),
            ));
        }
        let mode = if header.geometry(pm, 2) == 1 {
            ConsistencyMode::UndoLog
        } else {
            ConsistencyMode::None
        };
        let seed = header.seed(pm);
        let total = Self::total_cells(n_buckets, stash_cells);
        let (_, _, _, log_r) = Self::layout(region, total);
        let journal = Journal::open(mode, log_r);
        Ok(Self::assemble(region, n_buckets, stash_cells, seed, journal, header))
    }

    /// The persisted hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The two candidate buckets of `key`.
    #[inline]
    fn buckets_of(&self, key: &K) -> (u64, u64) {
        self.plan.buckets(self.hash.h1(key), self.hash.h2(key))
    }

    /// Records a completed lookup probe walk (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert attempt: cells examined, occupied cells stepped
    /// over, and how many residents were displaced (0 or 1 — PFHT's "at
    /// most one displacement" rule).
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64, displaced: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(displaced);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied, displaced);
    }

    /// Finds a free slot in bucket `b`.
    fn free_slot_in(&self, pm: &P, b: u64) -> Option<u64> {
        self.store
            .bitmap
            .find_zero_in_range(pm, self.plan.cell(b, 0), BUCKET_CELLS)
    }

    /// Overlay-aware variant of [`Pfht::free_slot_in`]: cells claimed by
    /// an in-flight batch session count as occupied.
    fn free_slot_for(&self, pm: &P, sess: &BatchSession<K, V>, b: u64) -> Option<u64> {
        (0..BUCKET_CELLS)
            .map(|s| self.plan.cell(b, s))
            .find(|&idx| self.store.is_free_for(pm, sess, idx))
    }

    /// Group-commits a chunk of staged publishes, bumping the count by the
    /// chunk size in the same commit. Returns the ops committed.
    fn commit_insert_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) + n as u64;
        sess.commit(pm, &mut self.journal, Some((self.header.count_off(), count)));
        n
    }

    /// Group-commits a chunk of staged retracts, dropping the count by the
    /// chunk size in the same commit. Returns the ops committed.
    fn commit_remove_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) - n as u64;
        sess.commit(pm, &mut self.journal, Some((self.header.count_off(), count)));
        n
    }

    /// The full single-op insert: free slot in either bucket, else at most
    /// one displacement, else the stash. [`HashScheme::insert`] and the
    /// displacement fallback of [`HashScheme::insert_batch`] both land
    /// here; the displacement and stash arms rewrite live cells and so can
    /// never be staged into a batch session.
    fn insert_one(&mut self, pm: &mut P, key: &K, value: &V) -> Result<(), InsertError> {
        let (b1, b2) = self.buckets_of(key);
        let mut probes = 0u64;
        let mut occupied = 0u64;

        // 1. A free slot in either candidate bucket.
        for b in [b1, b2] {
            if let Some(idx) = self.free_slot_in(pm, b) {
                // Cells before the first free slot are occupied.
                let off = idx - self.plan.cell(b, 0);
                self.journal.begin(pm);
                self.place(pm, idx, key, value);
                self.journal.commit(pm);
                self.note_insert(probes + off + 1, occupied + off, 0);
                return Ok(());
            }
            probes += BUCKET_CELLS;
            occupied += BUCKET_CELLS;
        }

        // 2. At most one displacement: move some resident of b1 or b2 to
        //    its alternate bucket if that has room.
        for b in [b1, b2] {
            for s in 0..BUCKET_CELLS {
                let idx = self.plan.cell(b, s);
                let resident = self.store.read_key(pm, idx);
                probes += 1;
                let (r1, r2) = self.buckets_of(&resident);
                let alt = if r1 == b { r2 } else { r1 };
                if alt == b {
                    continue; // both hashes map here; cannot move
                }
                if let Some(alt_idx) = self.free_slot_in(pm, alt) {
                    let alt_off = alt_idx - self.plan.cell(alt, 0);
                    probes += alt_off + 1;
                    occupied += alt_off;
                    self.journal.begin(pm);
                    // Move resident to its alternate bucket (write first,
                    // then flip bits — the new copy is durable before the
                    // old disappears).
                    let rv = self.store.read_value(pm, idx);
                    self.store
                        .stage_publish(pm, &mut self.journal, alt_idx, None);
                    self.store.publish(pm, alt_idx, &resident, &rv);
                    self.journal
                        .record_sealed(pm, self.store.bitmap.word_off_of(idx), 8);
                    self.store.bitmap.set_and_persist(pm, idx, false);
                    // Place the new item in the freed slot.
                    self.place(pm, idx, key, value);
                    self.journal.commit(pm);
                    self.note_insert(probes, occupied, 1);
                    return Ok(());
                }
                probes += BUCKET_CELLS;
                occupied += BUCKET_CELLS;
            }
        }

        // 3. Stash.
        let base = self.plan.stash_base();
        if let Some(idx) =
            self.store
                .bitmap
                .find_zero_in_range(pm, base, self.plan.stash_cells())
        {
            let off = idx - base;
            self.journal.begin(pm);
            self.place(pm, idx, key, value);
            self.journal.commit(pm);
            self.note_insert(probes + off + 1, occupied + off, 0);
            return Ok(());
        }
        let stash_cells = self.plan.stash_cells();
        self.note_insert(probes + stash_cells, occupied + stash_cells, 0);
        Err(InsertError::TableFull)
    }

    /// Writes `(key, value)` into `idx` with the usual commit sequence
    /// (inside the caller's open journal transaction).
    fn place(&mut self, pm: &mut P, idx: u64, key: &K, value: &V) {
        self.store
            .stage_publish(pm, &mut self.journal, idx, Some(self.header.count_off()));
        self.store.publish(pm, idx, key, value);
        self.header.inc_count(pm);
    }

    /// Locates `key` anywhere (buckets, then stash).
    fn find(&self, pm: &P, key: &K) -> Option<u64> {
        let (b1, b2) = self.buckets_of(key);
        let mut probes = 0u64;
        for b in [b1, b2] {
            for s in 0..BUCKET_CELLS {
                let idx = self.plan.cell(b, s);
                probes += 1;
                if self.store.is_occupied(pm, idx) && self.store.read_key(pm, idx) == *key {
                    self.note_probe(probes);
                    return Some(idx);
                }
            }
        }
        // Linear stash search — the cost PFHT pays at high load factors.
        let base = self.plan.stash_base();
        for i in 0..self.plan.stash_cells() {
            let idx = base + i;
            probes += 1;
            if self.store.is_occupied(pm, idx) && self.store.read_key(pm, idx) == *key {
                self.note_probe(probes);
                return Some(idx);
            }
        }
        self.note_probe(probes);
        None
    }

    /// Number of items currently in the stash (diagnostic).
    pub fn stash_used(&self, pm: &P) -> u64 {
        self.store.bitmap.count_ones_in_range(
            pm,
            self.plan.stash_base(),
            self.plan.stash_cells(),
        )
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for Pfht<P, K, V> {
    fn name(&self) -> &'static str {
        match self.journal.mode() {
            ConsistencyMode::None => "PFHT",
            ConsistencyMode::UndoLog => "PFHT-L",
        }
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        // A one-element batch reproduces the old single-op trace: a free
        // bucket slot stages + commits with the count in one session, and
        // the displacement/stash arms fall through to `insert_one`.
        self.insert_batch(pm, &[(key, value)]).map_err(|e| e.error)
    }

    /// Fence-coalesced batch insert. Keys whose candidate buckets have a
    /// free slot (treating cells claimed earlier in the batch as occupied)
    /// are staged and group-committed; a key needing a displacement or the
    /// stash first commits the staged prefix, then runs the single-op path
    /// — prefix durability holds either way.
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        if items.is_empty() {
            return Ok(());
        }
        let per_op = [self.store.cells.entry_len(), 8];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut committed = 0usize;
        let mut failure = None;
        for (key, value) in items {
            let (b1, b2) = self.buckets_of(key);
            let mut slot = None;
            let mut skipped = 0u64;
            for b in [b1, b2] {
                if let Some(idx) = self.free_slot_for(pm, &sess, b) {
                    slot = Some((idx, skipped + (idx - self.plan.cell(b, 0))));
                    break;
                }
                skipped += BUCKET_CELLS;
            }
            if let Some((idx, off)) = slot {
                self.note_insert(off + 1, off, 0);
                if sess.is_empty() {
                    self.journal.begin(pm);
                }
                sess.stage_publish(pm, &mut self.journal, self.store, idx, key, value);
                if sess.staged() >= chunk_cap {
                    committed += self.commit_insert_chunk(pm, &mut sess);
                }
                continue;
            }
            // Both buckets full: the displacement/stash path rewrites live
            // cells and cannot be staged. Commit the batch prefix so its
            // claims become real occupancy, then run the single-op insert.
            if !sess.is_empty() {
                committed += self.commit_insert_chunk(pm, &mut sess);
            }
            match self.insert_one(pm, key, value) {
                Ok(()) => committed += 1,
                Err(error) => {
                    failure = Some(error);
                    break;
                }
            }
        }
        if !sess.is_empty() {
            committed += self.commit_insert_chunk(pm, &mut sess);
        }
        match failure {
            Some(error) => Err(BatchError { committed, error }),
            None => Ok(()),
        }
    }

    fn get(&self, pm: &P, key: &K) -> Option<V> {
        self.find(pm, key).map(|idx| self.store.read_value(pm, idx))
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        self.remove_batch(pm, std::slice::from_ref(key)) == 1
    }

    /// Fence-coalesced batch remove: retracts stage (bit clears stay in
    /// batch order at commit) and the count moves once per chunk.
    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let per_op = [8, self.store.cells.entry_len()];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut removed = 0usize;
        for key in keys {
            let Some(idx) = self.find(pm, key) else {
                continue;
            };
            if sess.is_retracted(&self.store, idx) {
                continue; // duplicate key in the batch
            }
            if sess.is_empty() {
                self.journal.begin(pm);
            }
            sess.stage_retract(pm, &mut self.journal, self.store, idx);
            if sess.staged() >= chunk_cap {
                removed += self.commit_remove_chunk(pm, &mut sess);
            }
        }
        if !sess.is_empty() {
            removed += self.commit_remove_chunk(pm, &mut sess);
        }
        removed
    }

    fn len(&self, pm: &P) -> u64 {
        self.header.count(pm)
    }

    fn capacity(&self) -> u64 {
        self.plan.total_cells()
    }

    fn recover(&mut self, pm: &mut P) {
        self.journal.recover(pm);
        let count = self.store.recover_cells(pm);
        self.header.set_count(pm, count);
    }

    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        let mut occupied = 0u64;
        let mut seen: HashMap<Vec<u8>, u64> = HashMap::new();
        let total = self.capacity();
        let stash_base = self.plan.stash_base();
        for i in 0..total {
            if !self.store.is_occupied(pm, i) {
                if !self.store.cells.is_zeroed(pm, i) {
                    return Err(TableError::Corrupt(format!("empty cell {i} not zeroed")));
                }
                continue;
            }
            occupied += 1;
            let key = self.store.read_key(pm, i);
            if i < stash_base {
                let b = i / BUCKET_CELLS;
                let (b1, b2) = self.buckets_of(&key);
                if b != b1 && b != b2 {
                    return Err(TableError::Corrupt(format!(
                        "cell {i}: key belongs to buckets {b1}/{b2}, found in {b}"
                    )));
                }
            }
            let mut kb = vec![0u8; K::SIZE];
            key.write_to(&mut kb);
            if let Some(prev) = seen.insert(kb, i) {
                return Err(TableError::Corrupt(format!(
                    "duplicate key in cells {prev} and {i}"
                )));
            }
        }
        let count = self.len(pm);
        if count != occupied {
            return Err(TableError::Corrupt(format!(
                "count {count} != occupied {occupied}"
            )));
        }
        Ok(())
    }
}


/// The drainer's view: the raw index space is the whole cell array
/// (buckets, stash, or tree levels alike — occupancy is
/// position-independent, so eviction never breaks a probe invariant).
/// Eviction reuses the scheme's retract choreography, count maintained.
impl<P: Pmem, K: HashKey, V: Pod> MigrationSource<P, K, V> for Pfht<P, K, V> {
    fn migration_cells(&self) -> u64 {
        self.plan.total_cells()
    }

    fn entry_at(&self, pm: &P, i: u64) -> Option<(K, V)> {
        self.store
            .is_occupied(pm, i)
            .then(|| (self.store.read_key(pm, i), self.store.read_value(pm, i)))
    }

    fn evict_cell(&mut self, pm: &mut P, i: u64) -> bool {
        if !self.store.is_occupied(pm, i) {
            return false;
        }
        let mut sess = BatchSession::new();
        self.journal.begin(pm);
        sess.stage_retract(pm, &mut self.journal, self.store, i);
        self.commit_remove_chunk(pm, &mut sess);
        true
    }

    fn migration_cursor(&self, pm: &P) -> u64 {
        self.header.migration_cursor(pm)
    }

    fn set_migration_cursor(&mut self, pm: &mut P, cursor: u64) {
        self.header.set_migration_cursor(pm, cursor);
    }

    fn migration_active(&self, pm: &P) -> bool {
        self.header.migration_active(pm)
    }

    fn set_migration_active(&mut self, pm: &mut P, active: bool) {
        self.header.set_migration_active(pm, active);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    fn make(n_buckets: u64, mode: ConsistencyMode) -> (SimPmem, Pfht<SimPmem, u64, u64>) {
        let stash = (n_buckets * BUCKET_CELLS * 3 / 100).max(4);
        let size = Pfht::<SimPmem, u64, u64>::required_size(n_buckets, stash);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let t = Pfht::create(&mut pm, Region::new(0, size), n_buckets, stash, 3, mode).unwrap();
        (pm, t)
    }

    #[test]
    fn roundtrip_both_modes() {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            let (mut pm, mut t) = make(64, mode);
            for k in 0..180u64 {
                t.insert(&mut pm, k, k + 1).unwrap();
            }
            for k in 0..180u64 {
                assert_eq!(t.get(&pm, &k), Some(k + 1));
            }
            for k in 0..90u64 {
                assert!(t.remove(&mut pm, &k));
            }
            assert_eq!(t.len(&pm), 90);
            t.check_consistency(&pm).unwrap();
        }
    }

    #[test]
    fn geometry_for_respects_budget() {
        for total in [256u64, 1 << 12, 1 << 16, 100_000] {
            let (b, s) = Pfht::<SimPmem, u64, u64>::geometry_for(total);
            assert!(b.is_power_of_two());
            // Main table within budget; stash is the paper's 3% extra.
            assert!(b * BUCKET_CELLS <= total, "total {total}: {b} buckets");
            assert!(
                b * BUCKET_CELLS + s <= total + total * 3 / 100 + 1,
                "total {total}: {b} buckets + {s} stash"
            );
            assert!(s >= 1);
        }
    }

    #[test]
    fn fills_past_both_buckets_into_stash() {
        // Drive to saturation: the table is only "full" once the stash is,
        // so at the first failed insert every stash cell is occupied.
        let (mut pm, mut t) = make(16, ConsistencyMode::None); // 64 main cells
        let mut k = 0u64;
        let mut stored = vec![];
        loop {
            if t.insert(&mut pm, k, k).is_ok() {
                stored.push(k);
            } else {
                break;
            }
            k += 1;
        }
        let stash = t.stash_used(&pm);
        assert!(stash > 0, "stash unused at saturation");
        assert_eq!(
            stash,
            t.capacity() - 16 * BUCKET_CELLS,
            "table full implies stash full"
        );
        t.check_consistency(&pm).unwrap();
        for &key in &stored {
            assert_eq!(t.get(&pm, &key), Some(key));
        }
    }

    #[test]
    fn displacement_happens_and_preserves_items() {
        // Dense fill forces case-2 inserts (single displacement).
        let (mut pm, mut t) = make(8, ConsistencyMode::None); // 32 main cells
        let mut keys = vec![];
        for k in 0..30u64 {
            if t.insert(&mut pm, k, k * 7).is_ok() {
                keys.push(k);
            }
        }
        for &k in &keys {
            assert_eq!(t.get(&pm, &k), Some(k * 7));
        }
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn table_full_when_stash_exhausted() {
        let (mut pm, mut t) = make(4, ConsistencyMode::None); // 16 main + 4 stash
        let mut k = 0u64;
        let mut full = false;
        while k < 1000 {
            if t.insert(&mut pm, k, k).is_err() {
                full = true;
                break;
            }
            k += 1;
        }
        assert!(full, "tiny PFHT never filled");
        assert!(t.len(&pm) <= t.capacity());
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn reopen_preserves_state() {
        let (mut pm, mut t) = make(32, ConsistencyMode::None);
        for k in 0..50u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        let stash = (32 * BUCKET_CELLS * 3 / 100).max(4);
        let size = Pfht::<SimPmem, u64, u64>::required_size(32, stash);
        let t2 = Pfht::<SimPmem, u64, u64>::open(&mut pm, Region::new(0, size)).unwrap();
        assert_eq!(t2.len(&pm), 50);
        assert_eq!(t2.name(), "PFHT");
        for k in 0..50u64 {
            assert_eq!(t2.get(&pm, &k), Some(k));
        }
    }
}
