//! Iceberg hashing — an IcebergHT-style stable, low-associativity scheme
//! (Pandey et al., PLDI 2023 lineage; see PAPERS.md).
//!
//! Three levels, all built from 8-cell buckets so each bucket owns exactly
//! one 8-lane DRAM fingerprint word ([`MetaWords`]):
//!
//! * **level 1** — wide primary buckets holding half the cells; one hash
//!   picks the bucket, the metadata word filters its 8 lanes with the SWAR
//!   matcher before any key bytes are read;
//! * **level 2** — a small array of *paired* backup buckets: two hashes
//!   name two candidates and an insert takes a lane in whichever is
//!   emptier (power-of-two-choices);
//! * **backyard** — the overflow chain: buckets probed linearly from a
//!   hashed home, wrapping.
//!
//! The defining property is **stability**: an entry never moves after its
//! insert. There is no displacement, no cascading eviction, no
//! backward-shift — so deletes are pure retracts (crash-safe bare, unlike
//! the displacement baselines), migration eviction has no special cases,
//! and the volatile tag words can never go stale in the way a moved entry
//! would make them.
//!
//! Crash consistency is inherited unchanged from the shared layers: every
//! committed write goes through [`CellStore`]'s publish/retract (or their
//! batch-staged forms), so the 8-byte occupancy-word flip remains the only
//! failure-atomic publish point and the pinned 3/3/2 single-op budget
//! holds. The metadata words are volatile and rebuilt from the bitmap +
//! keys on open/recover — they add zero persisted bytes.
//!
//! Ops-layer only: the level geometry is a pure
//! [`IcebergPlan`](nvm_table::probe::IcebergPlan) and the pmem-facing
//! choreography is the shared [`CellStore`] + [`Journal`] pair.

use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::meta::MetaWords;
use nvm_table::probe::{match_bits, IcebergPlan, ICEBERG_LANES};
use nvm_table::{
    BatchError, BatchSession, CellArray, CellStore, ConsistencyMode, HashScheme, InsertError,
    Journal, MigrationSource, PmemBitmap, TableError, TableHeader,
};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Magic word ("ICEBERG1").
const MAGIC: u64 = 0x4943_4542_4552_4731;

/// Undo-log capacity: an op touches one cell, one bitmap word, the count.
const LOG_RECORDS: usize = 16;

/// Whether probes consult the volatile per-bucket fingerprint words or
/// scan occupancy directly (the ablation axis, mirroring the group
/// scheme's fp-cache on/off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetaMode {
    /// Scan all 8 lanes of each candidate bucket via the occupancy bitmap.
    Off,
    /// SWAR-match the bucket's tag word first; read keys only on tag hit.
    #[default]
    On,
}

/// The iceberg table: level-1 + level-2 + backyard cells in one flat
/// store, with a volatile tag word per bucket.
#[derive(Debug)]
pub struct Iceberg<P: Pmem, K: HashKey, V: Pod> {
    plan: IcebergPlan,
    seed: u64,
    hash: HashPair,
    meta_mode: MetaMode,
    /// One 8-lane fingerprint word per bucket, all levels; rebuilt on
    /// open/recover, never persisted.
    meta: MetaWords,
    header: TableHeader,
    store: CellStore<K, V>,
    journal: Journal,
    /// Probe/occupancy/displacement recording (same schema as the other
    /// schemes; displacement is identically zero — stability).
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> Iceberg<P, K, V> {
    /// Splits a cell budget into `(l1, l2, backyard)` bucket counts with
    /// the level ratio 2:1:1 (half the cells in the wide level-1, a
    /// quarter in each of level-2 and the backyard). The budget is rounded
    /// down to a power of two so each level's bucket count is one as well.
    pub fn geometry_for(total_cells: u64) -> (u64, u64, u64) {
        assert!(total_cells >= 4 * ICEBERG_LANES, "table too small for iceberg");
        let t = if total_cells.is_power_of_two() {
            total_cells
        } else {
            total_cells.next_power_of_two() / 2
        };
        (t / (2 * ICEBERG_LANES), t / (4 * ICEBERG_LANES), t / (4 * ICEBERG_LANES))
    }

    fn total_cells(l1: u64, l2: u64, backyard: u64) -> u64 {
        (l1 + l2 + backyard) * ICEBERG_LANES
    }

    fn log_bytes() -> usize {
        nvm_wal::UndoLog::region_size(LOG_RECORDS, CellArray::<K, V>::CELL_SIZE.max(8))
    }

    fn layout(region: Region, total: u64) -> (Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap = alloc.alloc_lines(PmemBitmap::region_size(total).max(8));
        let cells = alloc.alloc_lines(CellArray::<K, V>::region_size(total));
        let log = alloc.alloc_lines(Self::log_bytes());
        (header, bitmap, cells, log)
    }

    /// Pool bytes needed for the given geometry.
    pub fn required_size(l1: u64, l2: u64, backyard: u64) -> usize {
        let total = Self::total_cells(l1, l2, backyard);
        TableHeader::SIZE
            + PmemBitmap::region_size(total).max(8)
            + CellArray::<K, V>::region_size(total)
            + Self::log_bytes()
            + 4 * CACHELINE
    }

    fn assemble(
        region: Region,
        geo: (u64, u64, u64),
        seed: u64,
        meta_mode: MetaMode,
        journal: Journal,
        header: TableHeader,
    ) -> Self {
        let (l1, l2, backyard) = geo;
        let total = Self::total_cells(l1, l2, backyard);
        let (_, b, c, _) = Self::layout(region, total);
        Iceberg {
            plan: IcebergPlan::new(l1, l2, backyard),
            seed,
            hash: HashPair::from_seed(seed),
            meta_mode,
            meta: MetaWords::new(total),
            header,
            store: CellStore::attach(b, c, total),
            journal,
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(3 * ICEBERG_LANES as usize),
            region,
            _marker: PhantomData,
        }
    }

    /// Creates a fresh iceberg table. `geo` is `(l1, l2, backyard)` bucket
    /// counts; each must be a non-zero power of two.
    pub fn create(
        pm: &mut P,
        region: Region,
        geo: (u64, u64, u64),
        seed: u64,
        mode: ConsistencyMode,
        meta_mode: MetaMode,
    ) -> Result<Self, TableError> {
        let (l1, l2, backyard) = geo;
        if !l1.is_power_of_two() || !l2.is_power_of_two() || !backyard.is_power_of_two() {
            return Err(TableError::Config(format!(
                "iceberg bucket counts {l1}/{l2}/{backyard} must all be powers of two"
            )));
        }
        if region.len < Self::required_size(l1, l2, backyard) {
            return Err(TableError::RegionTooSmall {
                have: region.len,
                need: Self::required_size(l1, l2, backyard),
            });
        }
        let total = Self::total_cells(l1, l2, backyard);
        let (h_r, b, c, log_r) = Self::layout(region, total);
        CellStore::<K, V>::create(pm, b, c, total);
        let journal = Journal::create(pm, mode, log_r);
        let mode_flag = matches!(mode, ConsistencyMode::UndoLog) as u64;
        let meta_flag = matches!(meta_mode, MetaMode::On) as u64;
        let header = TableHeader::create(
            pm,
            h_r,
            MAGIC,
            seed,
            &[l1, l2, backyard, mode_flag, meta_flag],
        );
        Ok(Self::assemble(region, geo, seed, meta_mode, journal, header))
    }

    /// Header location; see `LinearProbing::header_region` for why this
    /// bypasses `layout`.
    fn header_region(region: Region) -> Region {
        Region::new(nvm_pmem::align_up(region.off, CACHELINE), TableHeader::SIZE)
    }

    /// Re-opens an existing iceberg table and rebuilds the volatile tag
    /// words from the committed cells.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, TableError> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err(TableError::Corrupt(
                "region too small for a table header".into(),
            ));
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let l1 = header.geometry(pm, 0);
        let l2 = header.geometry(pm, 1);
        let backyard = header.geometry(pm, 2);
        if !l1.is_power_of_two()
            || !l2.is_power_of_two()
            || !backyard.is_power_of_two()
            || region.len < Self::required_size(l1, l2, backyard)
        {
            return Err(TableError::Corrupt(
                "persisted geometry does not fit the region".into(),
            ));
        }
        let mode = if header.geometry(pm, 3) == 1 {
            ConsistencyMode::UndoLog
        } else {
            ConsistencyMode::None
        };
        let meta_mode = if header.geometry(pm, 4) == 1 { MetaMode::On } else { MetaMode::Off };
        let seed = header.seed(pm);
        let total = Self::total_cells(l1, l2, backyard);
        let (_, _, _, log_r) = Self::layout(region, total);
        let journal = Journal::open(mode, log_r);
        let mut t =
            Self::assemble(region, (l1, l2, backyard), seed, meta_mode, journal, header);
        t.rebuild_meta(pm);
        Ok(t)
    }

    /// The persisted hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The metadata ablation knob this table was created with.
    pub fn meta_mode(&self) -> MetaMode {
        self.meta_mode
    }

    /// The fingerprint tag of a key (the high byte of the third hash
    /// stream — independent of the bits any level masks for addressing).
    #[inline]
    fn tag_of(&self, key: &K) -> u8 {
        (self.hash.h3(key) >> 56) as u8
    }

    /// Rescans the committed cells and rewrites every tag word (open and
    /// recovery epilogue). DRAM-only.
    fn rebuild_meta(&mut self, pm: &P) {
        self.meta.reset();
        for idx in 0..self.store.len() {
            if self.store.is_occupied(pm, idx) {
                let key = self.store.read_key(pm, idx);
                self.meta.set(idx, self.tag_of(&key));
            }
        }
    }

    /// Records a completed lookup probe walk (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert: cells examined, occupied cells stepped over,
    /// and the displacement count — identically zero, which *is* the
    /// stability claim in the histograms.
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(0);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied);
    }

    /// Scans one bucket for `key`, counting each cell whose key bytes are
    /// actually compared into `probes`. With [`MetaMode::On`] the bucket's
    /// tag word is SWAR-filtered first, so misses usually cost zero key
    /// reads.
    fn scan_bucket(&self, pm: &P, bucket: u64, tag: u8, key: &K, probes: &mut u64) -> Option<u64> {
        match self.meta_mode {
            MetaMode::On => {
                let mut mask = match_bits(self.meta.word(bucket), tag);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as u64;
                    mask &= mask - 1;
                    let idx = self.plan.cell(bucket, lane);
                    *probes += 1;
                    if self.store.is_occupied(pm, idx) && self.store.read_key(pm, idx) == *key {
                        return Some(idx);
                    }
                }
                None
            }
            MetaMode::Off => {
                for idx in self.plan.bucket_cells(bucket) {
                    *probes += 1;
                    if self.store.is_occupied(pm, idx) && self.store.read_key(pm, idx) == *key {
                        return Some(idx);
                    }
                }
                None
            }
        }
    }

    /// Locates `key`: level-1 bucket, both level-2 candidates, then the
    /// backyard chain.
    fn find(&self, pm: &P, key: &K) -> Option<u64> {
        let (h1, h2, h3) = (self.hash.h1(key), self.hash.h2(key), self.hash.h3(key));
        let tag = self.tag_of(key);
        let mut probes = 0u64;
        let (a, b) = self.plan.l2_pair(h2, h3);
        for bucket in [self.plan.l1_bucket(h1), a, b] {
            if let Some(idx) = self.scan_bucket(pm, bucket, tag, key, &mut probes) {
                self.note_probe(probes);
                return Some(idx);
            }
        }
        for bucket in self.plan.backyard_sequence(h1) {
            if let Some(idx) = self.scan_bucket(pm, bucket, tag, key, &mut probes) {
                self.note_probe(probes);
                return Some(idx);
            }
        }
        self.note_probe(probes.max(1));
        None
    }

    /// First free lane of `bucket`, treating cells claimed by the
    /// in-flight batch session as occupied.
    fn free_lane_for(&self, pm: &P, sess: &BatchSession<K, V>, bucket: u64) -> Option<u64> {
        self.plan
            .bucket_cells(bucket)
            .find(|&idx| self.store.is_free_for(pm, sess, idx))
    }

    /// Free lanes of `bucket` under the same overlay (the
    /// power-of-two-choices load signal).
    fn free_lanes_in(&self, pm: &P, sess: &BatchSession<K, V>, bucket: u64) -> u64 {
        self.plan
            .bucket_cells(bucket)
            .filter(|&idx| self.store.is_free_for(pm, sess, idx))
            .count() as u64
    }

    /// Picks the resting cell for `key`: level-1 lane, else the emptier
    /// of the paired level-2 candidates, else the first backyard bucket
    /// with room. Returns `(idx, cells_examined, occupied_stepped_over)`;
    /// `None` means the table is full for this key. The choice never
    /// displaces a resident — stability.
    fn plan_slot(&self, pm: &P, sess: &BatchSession<K, V>, key: &K) -> Option<(u64, u64, u64)> {
        let (h1, h2, h3) = (self.hash.h1(key), self.hash.h2(key), self.hash.h3(key));
        let l1 = self.plan.l1_bucket(h1);
        if let Some(idx) = self.free_lane_for(pm, sess, l1) {
            let off = self.plan.lane_of_cell(idx);
            return Some((idx, off + 1, off));
        }
        let mut probes = ICEBERG_LANES;
        let mut occupied = ICEBERG_LANES;
        let (a, b) = self.plan.l2_pair(h2, h3);
        let (fa, fb) = (self.free_lanes_in(pm, sess, a), self.free_lanes_in(pm, sess, b));
        let pick = if fb > fa { b } else { a };
        probes += 2 * ICEBERG_LANES;
        occupied += 2 * ICEBERG_LANES - fa - fb;
        if let Some(idx) = self.free_lane_for(pm, sess, pick) {
            return Some((idx, probes, occupied));
        }
        for bucket in self.plan.backyard_sequence(h1) {
            if let Some(idx) = self.free_lane_for(pm, sess, bucket) {
                let off = self.plan.lane_of_cell(idx);
                return Some((idx, probes + off + 1, occupied + off));
            }
            probes += ICEBERG_LANES;
            occupied += ICEBERG_LANES;
        }
        None
    }

    /// Group-commits a chunk of staged publishes, bumping the count by the
    /// chunk size in the same commit (tag lanes splice after the flips).
    fn commit_insert_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) + n as u64;
        sess.commit_tagged(
            pm,
            &mut self.journal,
            Some((self.header.count_off(), count)),
            &self.meta,
        );
        n
    }

    /// Group-commits a chunk of staged retracts, dropping the count by the
    /// chunk size in the same commit.
    fn commit_remove_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) - n as u64;
        sess.commit_tagged(
            pm,
            &mut self.journal,
            Some((self.header.count_off(), count)),
            &self.meta,
        );
        n
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for Iceberg<P, K, V> {
    fn name(&self) -> &'static str {
        match self.journal.mode() {
            ConsistencyMode::None => "iceberg",
            ConsistencyMode::UndoLog => "iceberg-L",
        }
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        // A one-element batch reproduces the single-op 3/3/2 trace; with
        // no displacement arm there is no other path to fall back to.
        self.insert_batch(pm, &[(key, value)]).map_err(|e| e.error)
    }

    /// Fence-coalesced batch insert. Because placement never displaces a
    /// resident, *every* key stages — there is no single-op fallback, so
    /// a full chunk always commits with K + 2 fences.
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        if items.is_empty() {
            return Ok(());
        }
        let per_op = [self.store.cells.entry_len(), 8];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut committed = 0usize;
        let mut failure = None;
        for (key, value) in items {
            let Some((idx, probes, occupied)) = self.plan_slot(pm, &sess, key) else {
                failure = Some(InsertError::TableFull);
                break;
            };
            self.note_insert(probes, occupied);
            if sess.is_empty() {
                self.journal.begin(pm);
            }
            let tag = self.tag_of(key);
            sess.stage_publish_tagged(pm, &mut self.journal, self.store, idx, tag, key, value);
            if sess.staged() >= chunk_cap {
                committed += self.commit_insert_chunk(pm, &mut sess);
            }
        }
        if !sess.is_empty() {
            committed += self.commit_insert_chunk(pm, &mut sess);
        }
        match failure {
            Some(error) => Err(BatchError { committed, error }),
            None => Ok(()),
        }
    }

    fn get(&self, pm: &P, key: &K) -> Option<V> {
        self.find(pm, key).map(|idx| self.store.read_value(pm, idx))
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        self.remove_batch(pm, std::slice::from_ref(key)) == 1
    }

    /// Fence-coalesced batch remove: pure retracts (stability means no
    /// backward-shift or re-home), staged in batch order.
    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let per_op = [8, self.store.cells.entry_len()];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut removed = 0usize;
        for key in keys {
            let Some(idx) = self.find(pm, key) else {
                continue;
            };
            if sess.is_retracted(&self.store, idx) {
                continue; // duplicate key in the batch
            }
            if sess.is_empty() {
                self.journal.begin(pm);
            }
            sess.stage_retract_tagged(pm, &mut self.journal, self.store, idx);
            if sess.staged() >= chunk_cap {
                removed += self.commit_remove_chunk(pm, &mut sess);
            }
        }
        if !sess.is_empty() {
            removed += self.commit_remove_chunk(pm, &mut sess);
        }
        removed
    }

    fn len(&self, pm: &P) -> u64 {
        self.header.count(pm)
    }

    fn capacity(&self) -> u64 {
        self.plan.total_cells()
    }

    fn recover(&mut self, pm: &mut P) {
        self.journal.recover(pm);
        let count = self.store.recover_cells(pm);
        self.header.set_count(pm, count);
        self.rebuild_meta(pm);
    }

    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        let mut occupied = 0u64;
        let mut seen: HashMap<Vec<u8>, u64> = HashMap::new();
        for i in 0..self.capacity() {
            if !self.store.is_occupied(pm, i) {
                if !self.store.cells.is_zeroed(pm, i) {
                    return Err(TableError::Corrupt(format!("empty cell {i} not zeroed")));
                }
                continue;
            }
            occupied += 1;
            let key = self.store.read_key(pm, i);
            // Level membership: the key must be able to *reach* the cell
            // it rests in (stability means it was placed there directly).
            let (h1, h2, h3) = (self.hash.h1(&key), self.hash.h2(&key), self.hash.h3(&key));
            if !self.plan.cell_reachable(i, h1, h2, h3) {
                return Err(TableError::Corrupt(format!(
                    "cell {i} (level {}) unreachable for its key",
                    self.plan.level_of_cell(i)
                )));
            }
            // Tag coherence: the volatile lane must carry the key's tag
            // (false positives are allowed, false negatives are not).
            if self.meta.tag(i) != self.tag_of(&key) {
                return Err(TableError::Corrupt(format!(
                    "cell {i}: tag lane {:#x} != key tag {:#x}",
                    self.meta.tag(i),
                    self.tag_of(&key)
                )));
            }
            let mut kb = vec![0u8; K::SIZE];
            key.write_to(&mut kb);
            if let Some(prev) = seen.insert(kb, i) {
                return Err(TableError::Corrupt(format!(
                    "duplicate key in cells {prev} and {i}"
                )));
            }
        }
        let count = self.len(pm);
        if count != occupied {
            return Err(TableError::Corrupt(format!(
                "count {count} != occupied {occupied}"
            )));
        }
        Ok(())
    }
}

/// The drainer's view: stability makes this trivial — occupancy is
/// position-independent across all three levels and eviction is the
/// scheme's ordinary retract, so there are no displacement special cases.
impl<P: Pmem, K: HashKey, V: Pod> MigrationSource<P, K, V> for Iceberg<P, K, V> {
    fn migration_cells(&self) -> u64 {
        self.plan.total_cells()
    }

    fn entry_at(&self, pm: &P, i: u64) -> Option<(K, V)> {
        self.store
            .is_occupied(pm, i)
            .then(|| (self.store.read_key(pm, i), self.store.read_value(pm, i)))
    }

    fn evict_cell(&mut self, pm: &mut P, i: u64) -> bool {
        if !self.store.is_occupied(pm, i) {
            return false;
        }
        let mut sess = BatchSession::new();
        self.journal.begin(pm);
        sess.stage_retract_tagged(pm, &mut self.journal, self.store, i);
        self.commit_remove_chunk(pm, &mut sess);
        true
    }

    fn migration_cursor(&self, pm: &P) -> u64 {
        self.header.migration_cursor(pm)
    }

    fn set_migration_cursor(&mut self, pm: &mut P, cursor: u64) {
        self.header.set_migration_cursor(pm, cursor);
    }

    fn migration_active(&self, pm: &P) -> bool {
        self.header.migration_active(pm)
    }

    fn set_migration_active(&mut self, pm: &mut P, active: bool) {
        self.header.set_migration_active(pm, active);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    fn make(
        total_cells: u64,
        mode: ConsistencyMode,
        meta: MetaMode,
    ) -> (SimPmem, Iceberg<SimPmem, u64, u64>) {
        let geo = Iceberg::<SimPmem, u64, u64>::geometry_for(total_cells);
        let size = Iceberg::<SimPmem, u64, u64>::required_size(geo.0, geo.1, geo.2);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let t = Iceberg::create(&mut pm, Region::new(0, size), geo, 3, mode, meta).unwrap();
        (pm, t)
    }

    #[test]
    fn roundtrip_all_mode_combinations() {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            for meta in [MetaMode::Off, MetaMode::On] {
                let (mut pm, mut t) = make(256, mode, meta);
                for k in 0..180u64 {
                    t.insert(&mut pm, k, k + 1).unwrap();
                }
                for k in 0..180u64 {
                    assert_eq!(t.get(&pm, &k), Some(k + 1), "{mode:?}/{meta:?}");
                }
                for k in 0..90u64 {
                    assert!(t.remove(&mut pm, &k));
                }
                assert_eq!(t.len(&pm), 90);
                t.check_consistency(&pm).unwrap();
            }
        }
    }

    #[test]
    fn geometry_for_splits_two_one_one() {
        let (l1, l2, by) = Iceberg::<SimPmem, u64, u64>::geometry_for(1 << 12);
        assert_eq!((l1, l2, by), (256, 128, 128));
        assert_eq!(Iceberg::<SimPmem, u64, u64>::total_cells(l1, l2, by), 1 << 12);
        // Non-power-of-two budgets round down to a power of two.
        let (l1, l2, by) = Iceberg::<SimPmem, u64, u64>::geometry_for(5000);
        assert_eq!(Iceberg::<SimPmem, u64, u64>::total_cells(l1, l2, by), 4096);
    }

    /// The pinned persistence budget: single insert/remove = 3 flushes /
    /// 3 fences / 2 atomic writes, query = 0/0/0 — identical to every
    /// other scheme, tag words being DRAM-only.
    #[test]
    fn pinned_single_op_budgets() {
        let (mut pm, mut t) = make(256, ConsistencyMode::None, MetaMode::On);
        t.insert(&mut pm, 1, 10).unwrap();
        pm.reset_stats();
        t.insert(&mut pm, 2, 20).unwrap();
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (3, 3, 2));
        pm.reset_stats();
        assert_eq!(t.get(&pm, &2), Some(20));
        assert_eq!(t.get(&pm, &99), None);
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (0, 0, 0));
        pm.reset_stats();
        assert!(t.remove(&mut pm, &2));
        let st = pm.stats();
        assert_eq!((st.flushes, st.fences, st.atomic_writes), (3, 3, 2));
    }

    /// Stability: once inserted, an entry's cell never changes — across
    /// further inserts to saturation and interleaved removes.
    #[test]
    fn entries_never_move_after_insert() {
        let (mut pm, mut t) = make(256, ConsistencyMode::None, MetaMode::On);
        let mut homes: Vec<(u64, u64)> = Vec::new();
        let mut k = 0u64;
        while t.insert(&mut pm, k, k * 3).is_ok() {
            homes.push((k, t.find(&pm, &k).unwrap()));
            k += 1;
        }
        // Every previously recorded home is still the entry's cell.
        for &(key, idx) in &homes {
            assert_eq!(t.find(&pm, &key), Some(idx), "key {key} moved");
        }
        // Removes punch holes; survivors still must not move.
        for key in (0..k).step_by(3) {
            assert!(t.remove(&mut pm, &key));
        }
        for &(key, idx) in homes.iter().filter(|(key, _)| key % 3 != 0) {
            assert_eq!(t.find(&pm, &key), Some(idx), "key {key} moved after removes");
        }
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn fills_through_all_three_levels() {
        let (mut pm, mut t) = make(128, ConsistencyMode::None, MetaMode::On);
        let mut k = 0u64;
        let mut stored = vec![];
        while t.insert(&mut pm, k, k).is_ok() {
            stored.push(k);
            k += 1;
        }
        // Full means the key's backyard chain was exhausted — by then the
        // whole backyard level is occupied and the fill is deep.
        assert!(stored.len() as u64 >= t.capacity() / 2, "{} stored", stored.len());
        let mut level_seen = [false; 3];
        for &key in &stored {
            let idx = t.find(&pm, &key).unwrap();
            level_seen[t.plan.level_of_cell(idx) as usize] = true;
            assert_eq!(t.get(&pm, &key), Some(key));
        }
        assert_eq!(level_seen, [true; 3], "all three levels in use");
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn reopen_rebuilds_meta_words() {
        let (mut pm, mut t) = make(256, ConsistencyMode::None, MetaMode::On);
        for k in 0..60u64 {
            t.insert(&mut pm, k, k + 5).unwrap();
        }
        let geo = Iceberg::<SimPmem, u64, u64>::geometry_for(256);
        let size = Iceberg::<SimPmem, u64, u64>::required_size(geo.0, geo.1, geo.2);
        let t2 = Iceberg::<SimPmem, u64, u64>::open(&mut pm, Region::new(0, size)).unwrap();
        assert_eq!(t2.len(&pm), 60);
        assert_eq!(t2.name(), "iceberg");
        assert_eq!(t2.meta_mode(), MetaMode::On);
        for k in 0..60u64 {
            assert_eq!(t2.get(&pm, &k), Some(k + 5));
        }
        t2.check_consistency(&pm).unwrap();
    }

    #[test]
    fn batch_insert_coalesces_fences() {
        let (mut pm, mut t) = make(256, ConsistencyMode::None, MetaMode::On);
        let items: Vec<(u64, u64)> = (0..8u64).map(|k| (k, k * 2)).collect();
        pm.reset_stats();
        t.insert_batch(&mut pm, &items).unwrap();
        let st = pm.stats();
        // One chunk: K + 2 fences (no single-op fallback exists).
        assert_eq!(st.fences, 8 + 2);
        assert_eq!(st.flushes, 2 * 8 + 1);
        for (k, v) in items {
            assert_eq!(t.get(&pm, &k), Some(v));
        }
    }
}
