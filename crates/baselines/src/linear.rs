//! Linear probing with backward-shift deletion.
//!
//! The traditional DRAM scheme ([24] in the paper): key `x` starts at slot
//! `h(x)` and probes successive slots until a free cell. Deletion uses
//! Knuth's backward-shift algorithm (no tombstones): the hole left by the
//! deleted item is repeatedly filled with the next cluster member that is
//! allowed to move back, which keeps the probe invariant but costs many
//! extra NVM writes — the paper's "complicated delete process".
//!
//! Ops-layer only: the probe sequence is a pure
//! [`LinearPlan`](nvm_table::probe::LinearPlan) and every committed write
//! goes through the shared [`CellStore`] + [`Journal`] primitives.

use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::probe::LinearPlan;
use nvm_table::{
    BatchError, BatchSession, CellArray, CellStore, ConsistencyMode, HashScheme, InsertError,
    Journal, MigrationSource, PmemBitmap, TableError, TableHeader,
};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Magic word ("LINPROB1").
const MAGIC: u64 = 0x4C49_4E50_524F_4231;

/// Undo-log capacity: backward shift can move a whole cluster; size for
/// deep clusters at high load factors.
const LOG_RECORDS: usize = 4096;

/// A linear-probing hash table over a pmem pool.
#[derive(Debug)]
pub struct LinearProbing<P: Pmem, K: HashKey, V: Pod> {
    plan: LinearPlan,
    seed: u64,
    hash: HashPair,
    header: TableHeader,
    store: CellStore<K, V>,
    journal: Journal,
    /// DRAM mirror of the header's migration-active flag. While an online
    /// drain evicts cells, clusters contain holes, so lookups must not
    /// early-stop on an empty slot (see [`LinearProbing::find`]).
    migrating: bool,
    /// Probe/occupancy/displacement recording (same schema as group
    /// hashing). Pure DRAM arithmetic; never touches the pool.
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> LinearProbing<P, K, V> {
    fn log_bytes() -> usize {
        nvm_wal::UndoLog::region_size(LOG_RECORDS, CellArray::<K, V>::CELL_SIZE.max(8))
    }

    fn layout(region: Region, n: u64) -> (Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap = alloc.alloc_lines(PmemBitmap::region_size(n).max(8));
        let cells = alloc.alloc_lines(CellArray::<K, V>::region_size(n));
        let log = alloc.alloc_lines(Self::log_bytes());
        (header, bitmap, cells, log)
    }

    /// Pool bytes needed for `n` cells.
    pub fn required_size(n: u64) -> usize {
        TableHeader::SIZE
            + PmemBitmap::region_size(n).max(8)
            + CellArray::<K, V>::region_size(n)
            + Self::log_bytes()
            + 4 * CACHELINE
    }

    fn assemble(region: Region, n: u64, seed: u64, journal: Journal, header: TableHeader) -> Self {
        let (_, b, c, _) = Self::layout(region, n);
        LinearProbing {
            plan: LinearPlan::new(n),
            seed,
            hash: HashPair::from_seed(seed),
            header,
            store: CellStore::attach(b, c, n),
            journal,
            migrating: false,
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(16),
            region,
            _marker: PhantomData,
        }
    }

    /// Creates a fresh table with `n` cells (power of two).
    pub fn create(
        pm: &mut P,
        region: Region,
        n: u64,
        seed: u64,
        mode: ConsistencyMode,
    ) -> Result<Self, TableError> {
        if !n.is_power_of_two() {
            return Err(TableError::Config(format!(
                "cell count {n} is not a power of two"
            )));
        }
        if region.len < Self::required_size(n) {
            return Err(TableError::RegionTooSmall {
                have: region.len,
                need: Self::required_size(n),
            });
        }
        let (h_r, b, c, log_r) = Self::layout(region, n);
        CellStore::<K, V>::create(pm, b, c, n);
        let journal = Journal::create(pm, mode, log_r);
        let mode_flag = match mode {
            ConsistencyMode::None => 0,
            ConsistencyMode::UndoLog => 1,
        };
        let header = TableHeader::create(pm, h_r, MAGIC, seed, &[n, mode_flag]);
        Ok(Self::assemble(region, n, seed, journal, header))
    }

    /// Header location (first allocation of `layout`), computable without
    /// knowing the geometry — `open` must not run the full layout before
    /// validating the header, or a bogus region would panic instead of
    /// erroring.
    fn header_region(region: Region) -> Region {
        Region::new(nvm_pmem::align_up(region.off, CACHELINE), TableHeader::SIZE)
    }

    /// Re-opens a table from its region.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, TableError> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err(TableError::Corrupt(
                "region too small for a table header".into(),
            ));
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let n = header.geometry(pm, 0);
        if !n.is_power_of_two() || region.len < Self::required_size(n) {
            return Err(TableError::Corrupt(format!(
                "persisted geometry ({n} cells) does not fit the region"
            )));
        }
        let mode = if header.geometry(pm, 1) == 1 {
            ConsistencyMode::UndoLog
        } else {
            ConsistencyMode::None
        };
        let seed = header.seed(pm);
        let (_, _, _, log_r) = Self::layout(region, n);
        let journal = Journal::open(mode, log_r);
        let mut t = Self::assemble(region, n, seed, journal, header);
        t.migrating = t.header.migration_active(pm);
        Ok(t)
    }

    /// The persisted hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Home slot of `key`.
    #[inline]
    fn home(&self, key: &K) -> u64 {
        self.plan.home(self.hash.h1(key))
    }

    /// Records a completed lookup probe walk (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert attempt: cells examined and occupied cells
    /// stepped over (linear probing never relocates, so displacement is
    /// always 0).
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(0);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied);
    }

    /// Group-commits a staged insert chunk; the count rides the session
    /// commit (see [`BatchSession::commit`]).
    fn commit_insert_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) + n as u64;
        sess.commit(pm, &mut self.journal, Some((self.header.count_off(), count)));
        n
    }

    /// Finds the cell holding `key`, walking the probe sequence.
    ///
    /// While an online migration is draining this table, evictions punch
    /// holes into clusters, so the early-stop-at-empty probe invariant no
    /// longer holds; the walk skips holes and scans the full sequence
    /// instead. Normal operation keeps the cheap early stop.
    fn find(&self, pm: &P, key: &K) -> Option<u64> {
        for (step, i) in self.plan.sequence(self.home(key)).enumerate() {
            if !self.store.is_occupied(pm, i) {
                if self.migrating {
                    continue;
                }
                self.note_probe(step as u64 + 1);
                return None; // probe invariant: cluster ended
            }
            if self.store.read_key(pm, i) == *key {
                self.note_probe(step as u64 + 1);
                return Some(i);
            }
        }
        self.note_probe(self.plan.n());
        None
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for LinearProbing<P, K, V> {
    fn name(&self) -> &'static str {
        match self.journal.mode() {
            ConsistencyMode::None => "linear",
            ConsistencyMode::UndoLog => "linear-L",
        }
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        // A one-element batch: same probe walk, same 3-flush / 3-fence /
        // 2-atomic trace as the pre-batch single-op path.
        self.insert_batch(pm, &[(key, value)]).map_err(|e| e.error)
    }

    /// Fence-coalesced batch insert: each key's probe walk treats cells
    /// claimed earlier in the batch as occupied, the cell writes are
    /// staged, and the bit flips group-commit (prefix durability; see
    /// [`BatchSession`]). Deletes keep the per-op path — backward shift
    /// moves whole clusters and cannot be staged.
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        if items.is_empty() {
            return Ok(());
        }
        let per_op = [self.store.cells.entry_len(), 8];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut committed = 0usize;
        let mut failure = None;
        for (key, value) in items {
            let mut found = None;
            for (step, i) in self.plan.sequence(self.home(key)).enumerate() {
                if self.store.is_free_for(pm, &sess, i) {
                    found = Some((step as u64, i));
                    break;
                }
            }
            let Some((step, i)) = found else {
                self.note_insert(self.plan.n(), self.plan.n());
                failure = Some(InsertError::TableFull);
                break;
            };
            self.note_insert(step + 1, step);
            if sess.is_empty() {
                self.journal.begin(pm);
            }
            sess.stage_publish(pm, &mut self.journal, self.store, i, key, value);
            if sess.staged() >= chunk_cap {
                committed += self.commit_insert_chunk(pm, &mut sess);
            }
        }
        if !sess.is_empty() {
            committed += self.commit_insert_chunk(pm, &mut sess);
        }
        match failure {
            Some(error) => Err(BatchError { committed, error }),
            None => Ok(()),
        }
    }

    fn get(&self, pm: &P, key: &K) -> Option<V> {
        self.find(pm, key).map(|i| self.store.read_value(pm, i))
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        let Some(found) = self.find(pm, key) else {
            return false;
        };
        // Backward-shift deletion (Knuth 6.4 Algorithm R): fill the hole
        // with later cluster members whose home allows the move; every
        // move is an extra NVM write — the cost the paper highlights.
        self.journal.begin(pm);
        let mut hole = found;
        let mut i = found;
        loop {
            i = self.plan.step(i);
            if !self.store.is_occupied(pm, i) {
                break; // cluster ends: hole stays here
            }
            let home = self.home(&self.store.read_key(pm, i));
            if LinearPlan::must_stay(hole, home, i) {
                continue; // item already reachable; leave it
            }
            // Move cell i into the hole.
            self.store.stage_publish(pm, &mut self.journal, hole, None);
            let (k, v) = (self.store.read_key(pm, i), self.store.read_value(pm, i));
            self.store.publish(pm, hole, &k, &v);
            hole = i;
        }
        // Clear the final hole.
        self.store
            .stage_retract(pm, &mut self.journal, hole, Some(self.header.count_off()));
        self.store.retract(pm, hole);
        self.header.dec_count(pm);
        self.journal.commit(pm);
        true
    }

    fn len(&self, pm: &P) -> u64 {
        self.header.count(pm)
    }

    fn capacity(&self) -> u64 {
        self.plan.n()
    }

    fn recover(&mut self, pm: &mut P) {
        self.journal.recover(pm);
        let count = self.store.recover_cells(pm);
        self.header.set_count(pm, count);
    }

    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        let mut occupied = 0u64;
        let mut seen: HashMap<Vec<u8>, u64> = HashMap::new();
        for i in 0..self.plan.n() {
            if !self.store.is_occupied(pm, i) {
                if !self.store.cells.is_zeroed(pm, i) {
                    return Err(TableError::Corrupt(format!("empty cell {i} not zeroed")));
                }
                continue;
            }
            occupied += 1;
            let key = self.store.read_key(pm, i);
            // Probe invariant: every slot from home(key) to i is occupied.
            // Suspended mid-migration, when evictions legitimately punch
            // holes into clusters (lookups full-scan instead).
            if !self.migrating {
                let mut reachable = false;
                for j in self.plan.sequence(self.home(&key)) {
                    if j == i {
                        reachable = true;
                        break;
                    }
                    if !self.store.is_occupied(pm, j) {
                        break;
                    }
                }
                if !reachable {
                    return Err(TableError::Corrupt(format!(
                        "cell {i}: key unreachable from home {} (probe invariant broken)",
                        self.home(&key)
                    )));
                }
            }
            let mut kb = vec![0u8; K::SIZE];
            key.write_to(&mut kb);
            if let Some(prev) = seen.insert(kb, i) {
                return Err(TableError::Corrupt(format!(
                    "duplicate key in cells {prev} and {i}"
                )));
            }
        }
        let count = self.len(pm);
        if count != occupied {
            return Err(TableError::Corrupt(format!(
                "count {count} != occupied {occupied}"
            )));
        }
        Ok(())
    }
}

/// The drainer's view of a linear table: the raw index space is simply
/// the slot array. Eviction is a plain failure-atomic retract — no
/// backward shift, because shifting would move not-yet-drained entries
/// behind the persisted cursor and lose them. The holes this leaves are
/// what the `migrating` flag's full-scan lookups tolerate.
impl<P: Pmem, K: HashKey, V: Pod> MigrationSource<P, K, V> for LinearProbing<P, K, V> {
    fn migration_cells(&self) -> u64 {
        self.plan.n()
    }

    fn entry_at(&self, pm: &P, i: u64) -> Option<(K, V)> {
        self.store
            .is_occupied(pm, i)
            .then(|| (self.store.read_key(pm, i), self.store.read_value(pm, i)))
    }

    fn evict_cell(&mut self, pm: &mut P, i: u64) -> bool {
        if !self.store.is_occupied(pm, i) {
            return false;
        }
        self.journal.begin(pm);
        self.store
            .stage_retract(pm, &mut self.journal, i, Some(self.header.count_off()));
        self.store.retract(pm, i);
        self.header.dec_count(pm);
        self.journal.commit(pm);
        true
    }

    fn migration_cursor(&self, pm: &P) -> u64 {
        self.header.migration_cursor(pm)
    }

    fn set_migration_cursor(&mut self, pm: &mut P, cursor: u64) {
        self.header.set_migration_cursor(pm, cursor);
    }

    fn migration_active(&self, pm: &P) -> bool {
        self.header.migration_active(pm)
    }

    fn set_migration_active(&mut self, pm: &mut P, active: bool) {
        self.header.set_migration_active(pm, active);
        self.migrating = active;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    fn make(n: u64, mode: ConsistencyMode) -> (SimPmem, LinearProbing<SimPmem, u64, u64>) {
        let size = LinearProbing::<SimPmem, u64, u64>::required_size(n);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let t = LinearProbing::create(&mut pm, Region::new(0, size), n, 7, mode).unwrap();
        (pm, t)
    }

    #[test]
    fn roundtrip_both_modes() {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            let (mut pm, mut t) = make(256, mode);
            for k in 0..150u64 {
                t.insert(&mut pm, k, k * 2).unwrap();
            }
            for k in 0..150u64 {
                assert_eq!(t.get(&pm, &k), Some(k * 2));
            }
            assert_eq!(t.len(&pm), 150);
            t.check_consistency(&pm).unwrap();
        }
    }

    #[test]
    fn backward_shift_preserves_probe_invariant() {
        let (mut pm, mut t) = make(64, ConsistencyMode::None);
        // Fill densely so clusters form, then delete from cluster middles.
        for k in 0..48u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        for k in (0..48u64).step_by(3) {
            assert!(t.remove(&mut pm, &k), "remove {k}");
            t.check_consistency(&pm).unwrap();
        }
        for k in 0..48u64 {
            let want = if k % 3 == 0 { None } else { Some(k) };
            assert_eq!(t.get(&pm, &k), want, "key {k}");
        }
    }

    #[test]
    fn table_fills_to_one() {
        // Linear probing has no fixed utilization bound: it fills to 1.0.
        let (mut pm, mut t) = make(64, ConsistencyMode::None);
        let mut inserted = 0;
        let mut k = 0u64;
        while inserted < 64 {
            if t.insert(&mut pm, k, k).is_ok() {
                inserted += 1;
            }
            k += 1;
        }
        assert_eq!(t.len(&pm), 64);
        assert_eq!(t.insert(&mut pm, k, k), Err(InsertError::TableFull));
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn reopen_preserves_state() {
        let (mut pm, mut t) = make(128, ConsistencyMode::UndoLog);
        for k in 0..60u64 {
            t.insert(&mut pm, k, k + 9).unwrap();
        }
        let size = LinearProbing::<SimPmem, u64, u64>::required_size(128);
        let t2 =
            LinearProbing::<SimPmem, u64, u64>::open(&mut pm, Region::new(0, size)).unwrap();
        assert_eq!(t2.name(), "linear-L");
        for k in 0..60u64 {
            assert_eq!(t2.get(&pm, &k), Some(k + 9));
        }
    }

    #[test]
    fn delete_costs_more_writes_than_insert() {
        // The paper's observation: linear deletion is write-heavy.
        let (mut pm, mut t) = make(256, ConsistencyMode::None);
        for k in 0..190u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        pm.reset_stats();
        for k in 0..50u64 {
            t.insert(&mut pm, k + 1000, k).unwrap();
        }
        let insert_writes = pm.stats().bytes_written;
        pm.reset_stats();
        for k in 0..50u64 {
            t.remove(&mut pm, &k);
        }
        let delete_writes = pm.stats().bytes_written;
        assert!(
            delete_writes > insert_writes,
            "delete {delete_writes} <= insert {insert_writes}"
        );
    }

    #[test]
    fn logged_mode_rolls_back_torn_delete() {
        use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution};
        let (mut pm, mut t) = make(64, ConsistencyMode::UndoLog);
        for k in 0..40u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        let before: Vec<Option<u64>> = (0..40).map(|k| t.get(&pm, &k)).collect();
        // Crash at each event inside a delete; after recovery the table
        // must be exactly the pre-delete state or the post-delete state.
        for at in 0.. {
            let mut pm2 = pm.clone();
            let size = LinearProbing::<SimPmem, u64, u64>::required_size(64);
            let mut t2 = LinearProbing::<SimPmem, u64, u64>::open(
                &mut pm2,
                Region::new(0, size),
            )
            .unwrap();
            let base = pm2.events();
            pm2.set_crash_plan(Some(CrashPlan { at_event: base + at }));
            let done = run_with_crash(|| t2.remove(&mut pm2, &17)).is_ok();
            if done {
                break;
            }
            pm2.crash(CrashResolution::Random(at));
            let mut t3 = LinearProbing::<SimPmem, u64, u64>::open(
                &mut pm2,
                Region::new(0, size),
            )
            .unwrap();
            t3.recover(&mut pm2);
            t3.check_consistency(&pm2)
                .unwrap_or_else(|e| panic!("crash at +{at}: {e}"));
            // All-or-nothing: either 17 is still fully there or fully gone;
            // every other key untouched.
            for k in 0..40u64 {
                if k == 17 {
                    let got = t3.get(&pm2, &k);
                    assert!(got == before[k as usize] || got.is_none());
                } else {
                    assert_eq!(t3.get(&pm2, &k), before[k as usize], "key {k} at +{at}");
                }
            }
        }
    }
}
