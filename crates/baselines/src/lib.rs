//! Baseline NVM hashing schemes the paper compares against.
//!
//! Three schemes, each faithful to its published description and each
//! buildable in two consistency modes (see
//! [`ConsistencyMode`](nvm_table::ConsistencyMode)):
//!
//! * [`LinearProbing`] — classic open addressing with Knuth's backward-
//!   shift deletion. Great insert/query locality (probes are contiguous),
//!   the paper's example of expensive deletes.
//! * [`Pfht`] — Debnath et al.'s *PCM-friendly hash table*: a cuckoo
//!   variant with 4-cell buckets, two hash functions, **at most one
//!   displacement** per insert, and a small linear-search stash (3 % of
//!   the table) for insertion failures.
//! * [`PathHash`] — Zuo & Hua's *path hashing*: an inverted complete
//!   binary tree where an item may sit anywhere on the paths from its two
//!   hashed leaves toward the root; position sharing removes extra writes
//!   but the path cells are scattered across levels (poor locality).
//! * [`Iceberg`] — an IcebergHT-style *stable* scheme (beyond the paper's
//!   comparison set; see ROADMAP): wide level-1 buckets filtered by
//!   volatile 8-lane fingerprint words, paired level-2 backup buckets
//!   picked by power-of-two-choices, a linearly-probed backyard — and no
//!   displacement ever (entries never move after insert).
//!
//! `ConsistencyMode::None` reproduces the schemes as published (writes are
//! persisted, but multi-cell updates are not failure-atomic);
//! `ConsistencyMode::UndoLog` is the paper's `-L` variant that wraps every
//! update in an undo-log transaction, which is what the consistency-cost
//! experiments (Figures 2, 5, 6) measure.
//!
//! All three schemes are pure *ops-layer* code: probe sequences come from
//! the shared probe plans in [`nvm_table::probe`], and persistence goes
//! through the shared [`CellStore`](nvm_table::CellStore) +
//! [`Journal`] cell-store primitives — no baseline
//! carries a private bitmap scan, cell codec, or journal wrapper.

mod iceberg;
mod linear;
mod path;
mod pfht;

pub use iceberg::{Iceberg, MetaMode};
pub use linear::LinearProbing;
pub use nvm_table::Journal;
pub use path::PathHash;
pub use pfht::Pfht;
