//! Path hashing (Zuo & Hua, MSST 2017).
//!
//! Storage cells form an *inverted complete binary tree*: the leaf level
//! has `2^n` cells and each deeper level halves (level *i* has `2^(n-i)`
//! cells). Two hash functions map a key to two leaf positions; the key may
//! be stored in any cell on the two root-ward paths (leaf `k` passes
//! through node `k >> i` at level *i*). *Position sharing* means those
//! path cells are shared among many keys, so no extra writes are needed on
//! collisions. *Path shortening* keeps only the top `reserved_levels`
//! levels (the paper uses 20).
//!
//! The locality profile is the foil for group hashing: consecutive path
//! cells live in different level arrays, megabytes apart, so every probe
//! step is a fresh cacheline — more L3 misses, higher latency.
//!
//! Ops-layer only: the tree geometry is a pure
//! [`PathPlan`](nvm_table::probe::PathPlan) and every committed write goes
//! through the shared [`CellStore`] + [`Journal`] primitives.

use nvm_hashfn::{HashKey, HashPair, Pod};
use nvm_metrics::SchemeInstrumentation;
use nvm_pmem::{Pmem, Region, RegionAllocator, CACHELINE};
use nvm_table::probe::PathPlan;
use nvm_table::{
    BatchError, BatchSession, CellArray, CellStore, ConsistencyMode, HashScheme, InsertError,
    Journal, MigrationSource, PmemBitmap, TableError, TableHeader,
};
use std::collections::HashMap;
use std::marker::PhantomData;

/// Magic word ("PATHHSH1").
const MAGIC: u64 = 0x5041_5448_4853_4831;

/// The paper's reserved-level default.
pub const DEFAULT_RESERVED_LEVELS: u32 = 20;

/// Undo-log capacity (single-cell updates + bitmap + count).
const LOG_RECORDS: usize = 8;

/// A path hash table over a pmem pool.
#[derive(Debug)]
pub struct PathHash<P: Pmem, K: HashKey, V: Pod> {
    /// Inverted-tree geometry (level bases, paths, on-path checks).
    plan: PathPlan,
    seed: u64,
    hash: HashPair,
    header: TableHeader,
    /// Occupancy + cells over the concatenated level arrays (level 0 —
    /// the leaves — first).
    store: CellStore<K, V>,
    journal: Journal,
    /// Probe/occupancy/displacement recording (same schema as group
    /// hashing). Pure DRAM arithmetic; never touches the pool.
    #[cfg(feature = "instrument")]
    instr: SchemeInstrumentation,
    region: Region,
    _marker: PhantomData<fn(&mut P)>,
}

impl<P: Pmem, K: HashKey, V: Pod> PathHash<P, K, V> {
    /// Cells in a table with `leaf_bits` and `levels`.
    pub fn cell_count(leaf_bits: u32, levels: u32) -> u64 {
        PathPlan::cell_count(leaf_bits as u64, levels as u64)
    }

    /// Picks `(leaf_bits, levels)` whose cell count best fits (≤) a total
    /// budget, with the paper's reserved-level default.
    pub fn geometry_for(total_cells: u64) -> (u32, u32) {
        assert!(total_cells >= 3, "table too small for path hashing");
        let mut leaf_bits = 1;
        while Self::cell_count(leaf_bits + 1, DEFAULT_RESERVED_LEVELS) <= total_cells {
            leaf_bits += 1;
        }
        (leaf_bits, DEFAULT_RESERVED_LEVELS.min(leaf_bits + 1))
    }

    fn log_bytes() -> usize {
        nvm_wal::UndoLog::region_size(LOG_RECORDS, CellArray::<K, V>::CELL_SIZE.max(8))
    }

    fn layout(region: Region, total: u64) -> (Region, Region, Region, Region) {
        let mut alloc = RegionAllocator::new(region.off, region.end());
        let header = alloc.alloc_lines(TableHeader::SIZE);
        let bitmap = alloc.alloc_lines(PmemBitmap::region_size(total).max(8));
        let cells = alloc.alloc_lines(CellArray::<K, V>::region_size(total));
        let log = alloc.alloc_lines(Self::log_bytes());
        (header, bitmap, cells, log)
    }

    /// Pool bytes needed for the given geometry.
    pub fn required_size(leaf_bits: u32, levels: u32) -> usize {
        let total = Self::cell_count(leaf_bits, levels);
        TableHeader::SIZE
            + PmemBitmap::region_size(total).max(8)
            + CellArray::<K, V>::region_size(total)
            + Self::log_bytes()
            + 4 * CACHELINE
    }

    fn assemble(
        region: Region,
        leaf_bits: u32,
        levels: u32,
        seed: u64,
        journal: Journal,
        header: TableHeader,
    ) -> Self {
        let plan = PathPlan::new(leaf_bits as u64, levels as u64);
        let total = plan.total_cells();
        let (_, b, c, _) = Self::layout(region, total);
        PathHash {
            plan,
            seed,
            hash: HashPair::from_seed(seed),
            header,
            store: CellStore::attach(b, c, total),
            journal,
            #[cfg(feature = "instrument")]
            instr: SchemeInstrumentation::new(16),
            region,
            _marker: PhantomData,
        }
    }

    /// Creates a fresh path hash table.
    pub fn create(
        pm: &mut P,
        region: Region,
        leaf_bits: u32,
        levels: u32,
        seed: u64,
        mode: ConsistencyMode,
    ) -> Result<Self, TableError> {
        if leaf_bits == 0 || leaf_bits > 40 {
            return Err(TableError::Config(format!("bad leaf_bits {leaf_bits}")));
        }
        if levels == 0 {
            return Err(TableError::Config("need at least one level".into()));
        }
        if region.len < Self::required_size(leaf_bits, levels.min(leaf_bits + 1)) {
            return Err(TableError::RegionTooSmall {
                have: region.len,
                need: Self::required_size(leaf_bits, levels.min(leaf_bits + 1)),
            });
        }
        let levels = levels.min(leaf_bits + 1);
        let total = Self::cell_count(leaf_bits, levels);
        let (h_r, b, c, log_r) = Self::layout(region, total);
        CellStore::<K, V>::create(pm, b, c, total);
        let journal = Journal::create(pm, mode, log_r);
        let mode_flag = matches!(mode, ConsistencyMode::UndoLog) as u64;
        let header = TableHeader::create(
            pm,
            h_r,
            MAGIC,
            seed,
            &[leaf_bits as u64, levels as u64, mode_flag],
        );
        Ok(Self::assemble(region, leaf_bits, levels, seed, journal, header))
    }

    /// Header location; see `LinearProbing::header_region` for why this
    /// bypasses `layout`.
    fn header_region(region: Region) -> Region {
        Region::new(nvm_pmem::align_up(region.off, CACHELINE), TableHeader::SIZE)
    }

    /// Re-opens an existing table.
    pub fn open(pm: &mut P, region: Region) -> Result<Self, TableError> {
        let h_r = Self::header_region(region);
        if !region.contains(h_r.off, h_r.len) {
            return Err(TableError::Corrupt(
                "region too small for a table header".into(),
            ));
        }
        let header = TableHeader::open(pm, h_r, MAGIC)?;
        let leaf_bits = header.geometry(pm, 0) as u32;
        let levels = header.geometry(pm, 1) as u32;
        if leaf_bits == 0
            || leaf_bits > 40
            || levels == 0
            || region.len < Self::required_size(leaf_bits, levels.min(leaf_bits + 1))
        {
            return Err(TableError::Corrupt(
                "persisted geometry does not fit the region".into(),
            ));
        }
        let mode = if header.geometry(pm, 2) == 1 {
            ConsistencyMode::UndoLog
        } else {
            ConsistencyMode::None
        };
        let seed = header.seed(pm);
        let total = Self::cell_count(leaf_bits, levels);
        let (_, _, _, log_r) = Self::layout(region, total);
        let journal = Journal::open(mode, log_r);
        Ok(Self::assemble(region, leaf_bits, levels, seed, journal, header))
    }

    /// The persisted hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The pool region this table occupies.
    pub fn region(&self) -> Region {
        self.region
    }

    /// The two leaf positions of `key`.
    #[inline]
    fn leaves_of(&self, key: &K) -> (u64, u64) {
        self.plan.leaves(self.hash.h1(key), self.hash.h2(key))
    }

    /// Visits the candidate cells of `key` level by level (leaf pair,
    /// then their parents, ...). Returns the first cell where `f` says
    /// stop.
    fn scan_paths(&self, pm: &P, key: &K, mut f: impl FnMut(&P, u64) -> bool) -> Option<u64> {
        let (l1, l2) = self.leaves_of(key);
        self.plan.path_cells(l1, l2).find(|&idx| f(pm, idx))
    }

    /// Records a completed lookup probe walk (no-op without the
    /// `instrument` feature).
    #[inline]
    fn note_probe(&self, cells: u64) {
        #[cfg(feature = "instrument")]
        self.instr.record_probe(cells);
        #[cfg(not(feature = "instrument"))]
        let _ = cells;
    }

    /// Records one insert attempt: path cells examined and occupied path
    /// cells stepped over (position sharing means path hashing never
    /// relocates, so displacement is always 0).
    #[inline]
    fn note_insert(&self, probes: u64, occupied: u64) {
        #[cfg(feature = "instrument")]
        {
            self.instr.record_probe(probes);
            self.instr.record_occupancy(occupied);
            self.instr.record_displacement(0);
        }
        #[cfg(not(feature = "instrument"))]
        let _ = (probes, occupied);
    }

    /// Locates `key`.
    fn find(&self, pm: &P, key: &K) -> Option<u64> {
        let store = self.store;
        let mut probes = 0u64;
        let found = self.scan_paths(pm, key, |pm, idx| {
            probes += 1;
            store.is_occupied(pm, idx) && store.read_key(pm, idx) == *key
        });
        self.note_probe(probes);
        found
    }

    /// Group-commits a chunk of staged publishes, bumping the count by the
    /// chunk size in the same commit. Returns the ops committed.
    fn commit_insert_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) + n as u64;
        sess.commit(pm, &mut self.journal, Some((self.header.count_off(), count)));
        n
    }

    /// Group-commits a chunk of staged retracts, dropping the count by the
    /// chunk size in the same commit. Returns the ops committed.
    fn commit_remove_chunk(&mut self, pm: &mut P, sess: &mut BatchSession<K, V>) -> usize {
        let n = sess.staged();
        let count = self.header.count(pm) - n as u64;
        sess.commit(pm, &mut self.journal, Some((self.header.count_off(), count)));
        n
    }

    /// Items stored per level (diagnostic).
    pub fn level_occupancy(&self, pm: &P) -> Vec<u64> {
        (0..self.plan.levels())
            .map(|i| {
                self.store.bitmap.count_ones_in_range(
                    pm,
                    self.plan.level_base(i),
                    self.plan.level_size(i),
                )
            })
            .collect()
    }
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for PathHash<P, K, V> {
    fn name(&self) -> &'static str {
        match self.journal.mode() {
            ConsistencyMode::None => "path",
            ConsistencyMode::UndoLog => "path-L",
        }
    }

    fn instrumentation(&self) -> Option<&SchemeInstrumentation> {
        #[cfg(feature = "instrument")]
        {
            Some(&self.instr)
        }
        #[cfg(not(feature = "instrument"))]
        {
            None
        }
    }

    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        // A one-element batch: same path walk, same single-op trace.
        self.insert_batch(pm, &[(key, value)]).map_err(|e| e.error)
    }

    /// Fence-coalesced batch insert: each key takes the first cell on its
    /// two root-ward paths that is neither occupied nor claimed earlier in
    /// the batch; the cell writes stage and the bit flips group-commit
    /// (prefix durability; see [`BatchSession`]).
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        if items.is_empty() {
            return Ok(());
        }
        let per_op = [self.store.cells.entry_len(), 8];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut committed = 0usize;
        let mut failure = None;
        for (key, value) in items {
            let store = self.store;
            let mut probes = 0u64;
            let mut occupied = 0u64;
            let target = {
                let overlay = &sess;
                self.scan_paths(pm, key, |pm, idx| {
                    probes += 1;
                    let free = store.is_free_for(pm, overlay, idx);
                    if !free {
                        occupied += 1;
                    }
                    free
                })
            };
            self.note_insert(probes, occupied);
            let Some(idx) = target else {
                failure = Some(InsertError::TableFull);
                break;
            };
            if sess.is_empty() {
                self.journal.begin(pm);
            }
            sess.stage_publish(pm, &mut self.journal, self.store, idx, key, value);
            if sess.staged() >= chunk_cap {
                committed += self.commit_insert_chunk(pm, &mut sess);
            }
        }
        if !sess.is_empty() {
            committed += self.commit_insert_chunk(pm, &mut sess);
        }
        match failure {
            Some(error) => Err(BatchError { committed, error }),
            None => Ok(()),
        }
    }

    fn get(&self, pm: &P, key: &K) -> Option<V> {
        self.find(pm, key).map(|idx| self.store.read_value(pm, idx))
    }

    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        self.remove_batch(pm, std::slice::from_ref(key)) == 1
    }

    /// Fence-coalesced batch remove: retracts stage (bit clears stay in
    /// batch order at commit) and the count moves once per chunk.
    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        if keys.is_empty() {
            return 0;
        }
        let per_op = [8, self.store.cells.entry_len()];
        let chunk_cap = self.journal.ops_per_txn(&per_op, &[8]);
        let mut sess = BatchSession::new();
        let mut removed = 0usize;
        for key in keys {
            let Some(idx) = self.find(pm, key) else {
                continue;
            };
            if sess.is_retracted(&self.store, idx) {
                continue; // duplicate key in the batch
            }
            if sess.is_empty() {
                self.journal.begin(pm);
            }
            sess.stage_retract(pm, &mut self.journal, self.store, idx);
            if sess.staged() >= chunk_cap {
                removed += self.commit_remove_chunk(pm, &mut sess);
            }
        }
        if !sess.is_empty() {
            removed += self.commit_remove_chunk(pm, &mut sess);
        }
        removed
    }

    fn len(&self, pm: &P) -> u64 {
        self.header.count(pm)
    }

    fn capacity(&self) -> u64 {
        self.plan.total_cells()
    }

    fn recover(&mut self, pm: &mut P) {
        self.journal.recover(pm);
        let count = self.store.recover_cells(pm);
        self.header.set_count(pm, count);
    }

    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        let mut occupied = 0u64;
        let mut seen: HashMap<Vec<u8>, u64> = HashMap::new();
        for i in 0..self.capacity() {
            if !self.store.is_occupied(pm, i) {
                if !self.store.cells.is_zeroed(pm, i) {
                    return Err(TableError::Corrupt(format!("empty cell {i} not zeroed")));
                }
                continue;
            }
            occupied += 1;
            let key = self.store.read_key(pm, i);
            // The cell must lie on one of the key's two paths.
            let (l1, l2) = self.leaves_of(&key);
            if !self.plan.on_path(l1, i) && !self.plan.on_path(l2, i) {
                let level = self.plan.level_of_cell(i);
                return Err(TableError::Corrupt(format!(
                    "cell {i} (level {level}) not on its key's paths"
                )));
            }
            let mut kb = vec![0u8; K::SIZE];
            key.write_to(&mut kb);
            if let Some(prev) = seen.insert(kb, i) {
                return Err(TableError::Corrupt(format!(
                    "duplicate key in cells {prev} and {i}"
                )));
            }
        }
        let count = self.len(pm);
        if count != occupied {
            return Err(TableError::Corrupt(format!(
                "count {count} != occupied {occupied}"
            )));
        }
        Ok(())
    }
}


/// The drainer's view: the raw index space is the whole cell array
/// (buckets, stash, or tree levels alike — occupancy is
/// position-independent, so eviction never breaks a probe invariant).
/// Eviction reuses the scheme's retract choreography, count maintained.
impl<P: Pmem, K: HashKey, V: Pod> MigrationSource<P, K, V> for PathHash<P, K, V> {
    fn migration_cells(&self) -> u64 {
        self.plan.total_cells()
    }

    fn entry_at(&self, pm: &P, i: u64) -> Option<(K, V)> {
        self.store
            .is_occupied(pm, i)
            .then(|| (self.store.read_key(pm, i), self.store.read_value(pm, i)))
    }

    fn evict_cell(&mut self, pm: &mut P, i: u64) -> bool {
        if !self.store.is_occupied(pm, i) {
            return false;
        }
        let mut sess = BatchSession::new();
        self.journal.begin(pm);
        sess.stage_retract(pm, &mut self.journal, self.store, i);
        self.commit_remove_chunk(pm, &mut sess);
        true
    }

    fn migration_cursor(&self, pm: &P) -> u64 {
        self.header.migration_cursor(pm)
    }

    fn set_migration_cursor(&mut self, pm: &mut P, cursor: u64) {
        self.header.set_migration_cursor(pm, cursor);
    }

    fn migration_active(&self, pm: &P) -> bool {
        self.header.migration_active(pm)
    }

    fn set_migration_active(&mut self, pm: &mut P, active: bool) {
        self.header.set_migration_active(pm, active);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    fn make(
        leaf_bits: u32,
        levels: u32,
        mode: ConsistencyMode,
    ) -> (SimPmem, PathHash<SimPmem, u64, u64>) {
        let size = PathHash::<SimPmem, u64, u64>::required_size(leaf_bits, levels);
        let mut pm = SimPmem::new(size, SimConfig::fast_test());
        let t =
            PathHash::create(&mut pm, Region::new(0, size), leaf_bits, levels, 11, mode).unwrap();
        (pm, t)
    }

    #[test]
    fn cell_count_is_geometric_sum() {
        assert_eq!(PathHash::<SimPmem, u64, u64>::cell_count(3, 4), 8 + 4 + 2 + 1);
        assert_eq!(PathHash::<SimPmem, u64, u64>::cell_count(3, 20), 15); // clamped
        assert_eq!(PathHash::<SimPmem, u64, u64>::cell_count(10, 1), 1024);
    }

    #[test]
    fn geometry_for_fits_budget() {
        for total in [100u64, 1 << 12, 1 << 20] {
            let (lb, lv) = PathHash::<SimPmem, u64, u64>::geometry_for(total);
            assert!(PathHash::<SimPmem, u64, u64>::cell_count(lb, lv) <= total);
            // And it is not wastefully small: doubling the leaves must bust
            // the budget.
            assert!(
                PathHash::<SimPmem, u64, u64>::cell_count(lb + 1, DEFAULT_RESERVED_LEVELS)
                    > total
            );
        }
    }

    #[test]
    fn roundtrip_both_modes() {
        for mode in [ConsistencyMode::None, ConsistencyMode::UndoLog] {
            let (mut pm, mut t) = make(8, 6, mode);
            for k in 0..300u64 {
                t.insert(&mut pm, k, k * 2).unwrap();
            }
            for k in 0..300u64 {
                assert_eq!(t.get(&pm, &k), Some(k * 2));
            }
            for k in 0..100u64 {
                assert!(t.remove(&mut pm, &k));
            }
            assert_eq!(t.len(&pm), 200);
            t.check_consistency(&pm).unwrap();
        }
    }

    #[test]
    fn collisions_climb_levels() {
        let (mut pm, mut t) = make(6, 5, ConsistencyMode::None);
        // Fill well past the leaf level.
        let mut inserted = 0;
        for k in 0..200u64 {
            if t.insert(&mut pm, k, k).is_ok() {
                inserted += 1;
            }
        }
        let occ = t.level_occupancy(&pm);
        assert!(occ[0] > 0);
        assert!(occ[1..].iter().any(|&n| n > 0), "no overflow into levels: {occ:?}");
        assert_eq!(occ.iter().sum::<u64>(), inserted);
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn high_space_utilization() {
        // Path hashing's selling point: >90 % utilization before failure.
        let (mut pm, mut t) = make(8, 8, ConsistencyMode::None);
        let mut k = 0u64;
        loop {
            if t.insert(&mut pm, k, k).is_err() {
                break;
            }
            k += 1;
        }
        let util = t.len(&pm) as f64 / t.capacity() as f64;
        assert!(util > 0.75, "utilization {util:.3} too low");
        t.check_consistency(&pm).unwrap();
    }

    #[test]
    fn reopen_preserves_state() {
        let (mut pm, mut t) = make(7, 5, ConsistencyMode::UndoLog);
        for k in 0..80u64 {
            t.insert(&mut pm, k, k + 3).unwrap();
        }
        let size = PathHash::<SimPmem, u64, u64>::required_size(7, 5);
        let t2 = PathHash::<SimPmem, u64, u64>::open(&mut pm, Region::new(0, size)).unwrap();
        assert_eq!(t2.name(), "path-L");
        assert_eq!(t2.len(&pm), 80);
        for k in 0..80u64 {
            assert_eq!(t2.get(&pm, &k), Some(k + 3));
        }
        t2.check_consistency(&pm).unwrap();
    }

    #[test]
    fn shared_root_cells_dedup_in_scan() {
        // With one leaf bit and two levels (3 cells), every key's two
        // paths share the root; scanning must not double-visit it
        // (the c2 != c1 check) and the table must saturate at ≤ 3 items.
        let (mut pm, mut t) = make(1, 2, ConsistencyMode::None);
        let mut stored = 0u64;
        for k in 0..64u64 {
            if t.insert(&mut pm, k, k).is_ok() {
                stored += 1;
            }
        }
        assert!((2..=3).contains(&stored), "stored {stored}");
        assert_eq!(t.len(&pm), stored);
        t.check_consistency(&pm).unwrap();
    }
}
