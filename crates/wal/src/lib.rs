//! Undo logging — the duplicate-copy consistency technique the paper
//! measures against.
//!
//! The paper's `*-L` baselines (Linear-L, PFHT-L, Path-L) wrap each insert
//! or delete in an undo-log transaction: before a cell (or header word) is
//! modified in place, its old bytes are appended to a persistent log and
//! flushed; after all in-place writes are done and persisted, the log is
//! committed (truncated) with an atomic status write. Recovery rolls back
//! any uncommitted transaction by replaying the old images, restoring the
//! pre-transaction state.
//!
//! This is deliberately a *typical, reasonable* undo-log — records are
//! appended volatile and made durable by one batched [`UndoLog::seal`]
//! (flush of the record lines + one fence) before the in-place writes
//! begin, plus one flush for the commit — so the consistency-cost numbers
//! it produces (≈2× flushes and writes per update) match the paper's
//! motivation measurements rather than a strawman.
//!
//! # Log layout (all offsets relative to the log's region)
//!
//! ```text
//! +0   u64  header      bit 63 = ACTIVE, bits 0..62 = record count
//! +64  records...       each: u64 target_off, u64 len, len bytes payload,
//!                       padded to 8 bytes
//! ```
//!
//! The single header word is the linchpin: `seal` publishes
//! `(ACTIVE | n)` with one failure-atomic 8-byte store *after* the record
//! bodies are flushed and fenced, and `commit` atomically returns it to
//! 0. Because activity flag and record count travel in one atomic word,
//! no crash can ever pair an ACTIVE flag with a stale count (the classic
//! torn-metadata hazard of two-word log headers), and stale bodies from
//! earlier transactions are unreachable by construction.

use nvm_pmem::{Pmem, Region};

/// Header bit 63: a transaction is in flight.
const ACTIVE_BIT: u64 = 1 << 63;

const OFF_HEADER: usize = 0;
const OFF_RECORDS: usize = 64;

/// Maximum bytes a single record may cover (sanity bound; cells are tiny).
const MAX_RECORD_LEN: usize = 4096;

/// An undo log over a fixed region of a pmem pool.
///
/// One transaction may be open at a time (the paper's workloads are
/// single-threaded; concurrent schemes shard into one log per shard).
#[derive(Debug, Clone)]
pub struct UndoLog {
    region: Region,
    /// Write cursor within the region (volatile; rebuilt per transaction).
    cursor: usize,
    /// Cursor up to which records are sealed (durable).
    sealed: usize,
    /// Records appended in the open transaction (volatile mirror).
    n_records: u64,
    active: bool,
}

impl UndoLog {
    /// Minimum region size for `n` records of `len`-byte targets.
    pub fn region_size(n_records: usize, record_len: usize) -> usize {
        OFF_RECORDS + n_records * (16 + record_len.div_ceil(8) * 8)
    }

    /// Creates a fresh (idle) log in `region`, initializing its header.
    pub fn create<P: Pmem>(pm: &mut P, region: Region) -> Self {
        assert!(region.len >= OFF_RECORDS + 32, "log region too small");
        assert_eq!(region.off % 8, 0, "log region must be 8-byte aligned");
        pm.atomic_write_u64(region.off + OFF_HEADER, 0);
        pm.persist(region.off + OFF_HEADER, 8);
        UndoLog {
            region,
            cursor: OFF_RECORDS,
            sealed: OFF_RECORDS,
            n_records: 0,
            active: false,
        }
    }

    /// Attaches to an existing log region (e.g. after reopening a pool).
    /// Does not modify persistent state; call [`UndoLog::recover`] next.
    pub fn open(region: Region) -> Self {
        UndoLog {
            region,
            cursor: OFF_RECORDS,
            sealed: OFF_RECORDS,
            n_records: 0,
            active: false,
        }
    }

    /// True if a transaction is open.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Opens a transaction. Purely volatile: the persistent header only
    /// changes when [`UndoLog::seal`] publishes the first record batch
    /// (nothing needs undoing before then anyway).
    pub fn begin<P: Pmem>(&mut self, _pm: &mut P) {
        assert!(!self.active, "nested undo transaction");
        self.cursor = OFF_RECORDS;
        self.sealed = OFF_RECORDS;
        self.n_records = 0;
        self.active = true;
    }

    /// Logs the current content of `[target_off, target_off + len)` so a
    /// crashed transaction can be rolled back. The record is *volatile*
    /// until [`UndoLog::seal`] runs; seal before the first in-place write
    /// it protects.
    pub fn record<P: Pmem>(&mut self, pm: &mut P, target_off: usize, len: usize) {
        assert!(self.active, "record outside transaction");
        assert!(len > 0 && len <= MAX_RECORD_LEN, "bad record length {len}");
        let padded = len.div_ceil(8) * 8;
        let rec_off = self.region.off + self.cursor;
        assert!(
            self.cursor + 16 + padded <= self.region.len,
            "undo log region overflow"
        );

        // Old image.
        let mut old = vec![0u8; len];
        pm.read(target_off, &mut old);

        pm.write_u64(rec_off, target_off as u64);
        pm.write_u64(rec_off + 8, len as u64);
        pm.write(rec_off + 16, &old);
        self.cursor += 16 + padded;
        self.n_records += 1;
        // The persistent record count is NOT touched here: an unfenced
        // count update could become durable while the bodies are still
        // volatile, publishing garbage. seal() writes it after the bodies
        // are fenced.
    }

    /// Makes every appended record durable. Two ordered steps: (1) flush
    /// the unsealed record lines and fence — bodies first; (2) flush the
    /// updated record count and fence — the count *publishes* the records,
    /// so it must never become durable before them. Must run before the
    /// in-place writes the records protect. No-op if nothing is unsealed.
    pub fn seal<P: Pmem>(&mut self, pm: &mut P) {
        assert!(self.active, "seal outside transaction");
        if self.sealed == self.cursor {
            return;
        }
        pm.flush(
            self.region.off + self.sealed,
            self.cursor - self.sealed,
        );
        pm.fence();
        // One atomic store publishes flag + count together; the bodies
        // are already durable (fence above).
        pm.atomic_write_u64(
            self.region.off + OFF_HEADER,
            ACTIVE_BIT | self.n_records,
        );
        pm.persist(self.region.off + OFF_HEADER, 8);
        self.sealed = self.cursor;
    }

    /// Records and immediately seals (convenience for incremental
    /// multi-step updates like backward-shift deletion).
    pub fn record_sealed<P: Pmem>(&mut self, pm: &mut P, target_off: usize, len: usize) {
        self.record(pm, target_off, len);
        self.seal(pm);
    }

    /// Commits: callers must have already persisted their in-place writes.
    /// Atomically returns the log to IDLE.
    pub fn commit<P: Pmem>(&mut self, pm: &mut P) {
        assert!(self.active, "commit outside transaction");
        assert_eq!(
            self.sealed, self.cursor,
            "unsealed records at commit: seal() must precede in-place writes"
        );
        if self.sealed != OFF_RECORDS {
            // Something was published: atomically retire it.
            pm.atomic_write_u64(self.region.off + OFF_HEADER, 0);
            pm.persist(self.region.off + OFF_HEADER, 8);
        }
        self.active = false;
    }

    /// Rolls back an uncommitted transaction if one is present in the
    /// persistent state. Returns `true` if a rollback happened. Safe to
    /// call unconditionally on startup; idempotent.
    pub fn recover<P: Pmem>(&mut self, pm: &mut P) -> bool {
        let header = pm.read_u64(self.region.off + OFF_HEADER);
        self.active = false;
        self.cursor = OFF_RECORDS;
        self.sealed = OFF_RECORDS;
        self.n_records = 0;
        if header & ACTIVE_BIT == 0 {
            return false;
        }
        let n = header & !ACTIVE_BIT;
        let mut cursor = OFF_RECORDS;
        // Replay old images in reverse order (later records may cover the
        // same range; the oldest image must win, i.e. be applied last).
        let mut records = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let target = pm.read_u64(self.region.off + cursor) as usize;
            let len = pm.read_u64(self.region.off + cursor + 8) as usize;
            assert!(len > 0 && len <= MAX_RECORD_LEN, "corrupt undo record");
            records.push((target, len, self.region.off + cursor + 16));
            cursor += 16 + len.div_ceil(8) * 8;
        }
        for &(target, len, payload_off) in records.iter().rev() {
            let mut old = vec![0u8; len];
            pm.read(payload_off, &mut old);
            pm.write(target, &old);
            pm.persist(target, len);
        }
        pm.atomic_write_u64(self.region.off + OFF_HEADER, 0);
        pm.persist(self.region.off + OFF_HEADER, 8);
        true
    }

    /// The log's pmem region.
    pub fn region(&self) -> Region {
        self.region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{CrashResolution, PmemRead, SimConfig, SimPmem};

    const DATA: usize = 0; // data area: first 1 KiB
    const LOG: usize = 1024;

    fn setup() -> (SimPmem, UndoLog) {
        let mut pm = SimPmem::new(8192, SimConfig::fast_test());
        let log = UndoLog::create(&mut pm, Region::new(LOG, 4096));
        (pm, log)
    }

    /// A guarded in-place update: log old values, seal, write, persist.
    fn tx_update(pm: &mut SimPmem, log: &mut UndoLog, writes: &[(usize, u64)]) {
        log.begin(pm);
        for &(off, _) in writes {
            log.record(pm, off, 8);
        }
        log.seal(pm);
        for &(off, v) in writes {
            pm.write_u64(off, v);
            pm.persist(off, 8);
        }
        log.commit(pm);
    }

    #[test]
    fn committed_tx_survives() {
        let (mut pm, mut log) = setup();
        tx_update(&mut pm, &mut log, &[(DATA, 10), (DATA + 8, 20)]);
        pm.crash(CrashResolution::DropUnflushed);
        let mut log2 = UndoLog::open(log.region());
        assert!(!log2.recover(&mut pm)); // nothing to roll back
        assert_eq!(pm.read_u64(DATA), 10);
        assert_eq!(pm.read_u64(DATA + 8), 20);
    }

    #[test]
    fn uncommitted_tx_rolls_back_fully() {
        let (mut pm, mut log) = setup();
        tx_update(&mut pm, &mut log, &[(DATA, 1), (DATA + 8, 2)]);

        // Second transaction crashes mid-flight (after in-place writes,
        // before commit).
        log.begin(&mut pm);
        log.record(&mut pm, DATA, 8);
        log.record(&mut pm, DATA + 8, 8);
        log.seal(&mut pm);
        pm.write_u64(DATA, 100);
        pm.persist(DATA, 8);
        pm.write_u64(DATA + 8, 200);
        // crash before persist of second write and before commit
        pm.crash(CrashResolution::PersistAll);

        let mut log2 = UndoLog::open(log.region());
        assert!(log2.recover(&mut pm));
        assert_eq!(pm.read_u64(DATA), 1);
        assert_eq!(pm.read_u64(DATA + 8), 2);
    }

    #[test]
    fn recover_is_idempotent() {
        let (mut pm, mut log) = setup();
        log.begin(&mut pm);
        log.record(&mut pm, DATA, 8);
        log.seal(&mut pm);
        pm.write_u64(DATA, 7);
        pm.crash(CrashResolution::PersistAll);
        let mut log2 = UndoLog::open(log.region());
        assert!(log2.recover(&mut pm));
        assert!(!log2.recover(&mut pm));
        assert_eq!(pm.read_u64(DATA), 0);
    }

    #[test]
    fn overlapping_records_restore_oldest() {
        let (mut pm, mut log) = setup();
        pm.write_u64(DATA, 42);
        pm.persist(DATA, 8);

        log.begin(&mut pm);
        log.record_sealed(&mut pm, DATA, 8); // old = 42
        pm.write_u64(DATA, 43);
        pm.persist(DATA, 8);
        log.record_sealed(&mut pm, DATA, 8); // old = 43
        pm.write_u64(DATA, 44);
        pm.persist(DATA, 8);
        pm.crash(CrashResolution::PersistAll);

        let mut log2 = UndoLog::open(log.region());
        assert!(log2.recover(&mut pm));
        assert_eq!(pm.read_u64(DATA), 42);
    }

    #[test]
    fn multibyte_record_roundtrip() {
        let (mut pm, mut log) = setup();
        pm.write(DATA, &[0xAB; 24]);
        pm.persist(DATA, 24);
        log.begin(&mut pm);
        log.record(&mut pm, DATA, 24);
        log.seal(&mut pm);
        pm.write(DATA, &[0xCD; 24]);
        pm.persist(DATA, 24);
        pm.crash(CrashResolution::PersistAll);
        let mut log2 = UndoLog::open(log.region());
        log2.recover(&mut pm);
        let mut buf = [0u8; 24];
        pm.read(DATA, &mut buf);
        assert_eq!(buf, [0xAB; 24]);
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_begin_panics() {
        let (mut pm, mut log) = setup();
        log.begin(&mut pm);
        log.begin(&mut pm);
    }

    #[test]
    fn logging_roughly_doubles_flushes() {
        // The quantitative heart of the paper's Figure 2: an undo-logged
        // 8-byte update costs ~2-3x the flushes of a raw persisted update.
        let (mut pm, mut log) = setup();
        pm.reset_stats();
        pm.write_u64(DATA, 5);
        pm.persist(DATA, 8);
        let raw = pm.stats().flushes;

        pm.reset_stats();
        tx_update(&mut pm, &mut log, &[(DATA, 6)]);
        let logged = pm.stats().flushes;
        assert!(
            logged >= 2 * raw,
            "logged {logged} flushes vs raw {raw}"
        );
    }
}
