//! Exhaustive crash-point testing of the undo log itself.
//!
//! For a transaction updating several disjoint words, inject a crash at
//! every mutation event under every resolution; after recovery the data
//! must be *exactly* the pre-transaction state (uncommitted) or exactly
//! the post-transaction state (committed) — never a mixture.

use nvm_pmem::{
    run_with_crash, CrashPlan, CrashResolution, Pmem, PmemRead, Region, SimConfig, SimPmem,
};
use nvm_wal::UndoLog;

const DATA: usize = 0;
const LOG: usize = 2048;
const WORDS: usize = 5;

fn setup(initial: u64) -> (SimPmem, UndoLog) {
    let mut pm = SimPmem::new(16384, SimConfig::fast_test());
    for w in 0..WORDS {
        pm.write_u64(DATA + w * 8, initial + w as u64);
        pm.persist(DATA + w * 8, 8);
    }
    let log = UndoLog::create(&mut pm, Region::new(LOG, 8192));
    (pm, log)
}

/// The guarded transaction under test: log everything, then update
/// everything in place, then commit.
fn transaction(pm: &mut SimPmem, log: &mut UndoLog, new: u64) {
    log.begin(pm);
    for w in 0..WORDS {
        log.record(pm, DATA + w * 8, 8);
    }
    log.seal(pm);
    for w in 0..WORDS {
        pm.write_u64(DATA + w * 8, new + w as u64);
        pm.persist(DATA + w * 8, 8);
    }
    log.commit(pm);
}

#[test]
fn every_crash_point_is_all_or_nothing() {
    const OLD: u64 = 1000;
    const NEW: u64 = 2000;
    for how in [
        CrashResolution::DropUnflushed,
        CrashResolution::PersistAll,
        CrashResolution::Alternate { persist_first: true },
        CrashResolution::Alternate { persist_first: false },
        CrashResolution::Random(1),
        CrashResolution::Random(99),
    ] {
        let mut event = 0u64;
        loop {
            let (mut pm, mut log) = setup(OLD);
            let base = pm.events();
            pm.set_crash_plan(Some(CrashPlan {
                at_event: base + event,
            }));
            let done = run_with_crash(|| transaction(&mut pm, &mut log, NEW)).is_ok();
            if done {
                assert!(event > 10, "transaction suspiciously cheap");
                break;
            }
            pm.crash(how);

            let mut log2 = UndoLog::open(log.region());
            log2.recover(&mut pm);

            let words: Vec<u64> = (0..WORDS).map(|w| pm.read_u64(DATA + w * 8)).collect();
            let all_old = words
                .iter()
                .enumerate()
                .all(|(w, &v)| v == OLD + w as u64);
            let all_new = words
                .iter()
                .enumerate()
                .all(|(w, &v)| v == NEW + w as u64);
            assert!(
                all_old || all_new,
                "torn transaction at event {event} under {how:?}: {words:?}"
            );
            event += 1;
            assert!(event < 400, "transaction never completed");
        }
    }
}

#[test]
fn back_to_back_transactions_respect_boundaries() {
    // Crash during the SECOND transaction must roll back to the first
    // transaction's state, not to the initial state.
    const OLD: u64 = 10;
    const MID: u64 = 500;
    const NEW: u64 = 900;
    for event in 0..200u64 {
        let (mut pm, mut log) = setup(OLD);
        transaction(&mut pm, &mut log, MID);

        let base = pm.events();
        pm.set_crash_plan(Some(CrashPlan {
            at_event: base + event,
        }));
        let done = run_with_crash(|| transaction(&mut pm, &mut log, NEW)).is_ok();
        if done {
            break;
        }
        pm.crash(CrashResolution::Random(event));
        let mut log2 = UndoLog::open(log.region());
        log2.recover(&mut pm);

        let words: Vec<u64> = (0..WORDS).map(|w| pm.read_u64(DATA + w * 8)).collect();
        let all_mid = words.iter().enumerate().all(|(w, &v)| v == MID + w as u64);
        let all_new = words.iter().enumerate().all(|(w, &v)| v == NEW + w as u64);
        assert!(
            all_mid || all_new,
            "crash in tx2 (event {event}) exposed wrong state: {words:?}"
        );
        assert!(
            !words.iter().enumerate().any(|(w, &v)| v == OLD + w as u64),
            "rolled back too far: {words:?}"
        );
    }
}
