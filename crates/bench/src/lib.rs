//! Shared helpers for the wall-clock (criterion) benchmarks.
//!
//! The harness binaries measure *simulated* time on [`SimPmem`]; these
//! benches measure *wall-clock* time on [`RealPmem`] — a DRAM pool driven
//! by real `clflush`/`mfence` intrinsics plus the paper's 300 ns emulated
//! NVM write delay. Absolute numbers are machine-specific; the benches
//! exist to confirm that the paper's *relative* shapes survive on real
//! hardware timing, and to catch performance regressions.
//!
//! [`SimPmem`]: nvm_pmem::SimPmem
//! [`RealPmem`]: nvm_pmem::RealPmem

use group_hash::{GroupHash, GroupHashConfig};
use nvm_baselines::{Iceberg, LinearProbing, MetaMode, PathHash, Pfht};
use nvm_pmem::{RealPmem, Region};
use nvm_table::{ConsistencyMode, HashScheme, InsertError};
use nvm_traces::{RandomNum, Trace};

/// Emulated extra NVM write latency for benches. Shorter than the paper's
/// 300 ns so criterion converges quickly while keeping flushes dominant.
pub const BENCH_NVM_NS: u64 = 100;

/// A boxed-scheme constructor so benches can sweep schemes uniformly.
pub enum BenchScheme {
    Linear(LinearProbing<RealPmem, u64, u64>),
    Pfht(Pfht<RealPmem, u64, u64>),
    Path(PathHash<RealPmem, u64, u64>),
    Iceberg(Iceberg<RealPmem, u64, u64>),
    Group(GroupHash<RealPmem, u64, u64>),
}

impl BenchScheme {
    pub fn insert(&mut self, pm: &mut RealPmem, k: u64, v: u64) -> Result<(), InsertError> {
        match self {
            BenchScheme::Linear(t) => t.insert(pm, k, v),
            BenchScheme::Pfht(t) => t.insert(pm, k, v),
            BenchScheme::Path(t) => t.insert(pm, k, v),
            BenchScheme::Iceberg(t) => t.insert(pm, k, v),
            BenchScheme::Group(t) => t.insert(pm, k, v),
        }
    }
    pub fn get(&self, pm: &mut RealPmem, k: &u64) -> Option<u64> {
        match self {
            BenchScheme::Linear(t) => t.get(pm, k),
            BenchScheme::Pfht(t) => t.get(pm, k),
            BenchScheme::Path(t) => t.get(pm, k),
            BenchScheme::Iceberg(t) => t.get(pm, k),
            BenchScheme::Group(t) => t.get(pm, k),
        }
    }
    pub fn remove(&mut self, pm: &mut RealPmem, k: &u64) -> bool {
        match self {
            BenchScheme::Linear(t) => t.remove(pm, k),
            BenchScheme::Pfht(t) => t.remove(pm, k),
            BenchScheme::Path(t) => t.remove(pm, k),
            BenchScheme::Iceberg(t) => t.remove(pm, k),
            BenchScheme::Group(t) => t.remove(pm, k),
        }
    }
    pub fn capacity(&self) -> u64 {
        match self {
            BenchScheme::Linear(t) => HashScheme::<RealPmem, u64, u64>::capacity(t),
            BenchScheme::Pfht(t) => HashScheme::<RealPmem, u64, u64>::capacity(t),
            BenchScheme::Path(t) => HashScheme::<RealPmem, u64, u64>::capacity(t),
            BenchScheme::Iceberg(t) => HashScheme::<RealPmem, u64, u64>::capacity(t),
            BenchScheme::Group(t) => HashScheme::<RealPmem, u64, u64>::capacity(t),
        }
    }

    /// The scheme's probe/occupancy/displacement histograms. Always
    /// `Some` here: gh-bench's dependency graph builds the scheme crates
    /// with their `instrument` feature (via gh-harness).
    pub fn instrumentation(&self) -> Option<&nvm_metrics::SchemeInstrumentation> {
        match self {
            BenchScheme::Linear(t) => HashScheme::<RealPmem, u64, u64>::instrumentation(t),
            BenchScheme::Pfht(t) => HashScheme::<RealPmem, u64, u64>::instrumentation(t),
            BenchScheme::Path(t) => HashScheme::<RealPmem, u64, u64>::instrumentation(t),
            BenchScheme::Iceberg(t) => HashScheme::<RealPmem, u64, u64>::instrumentation(t),
            BenchScheme::Group(t) => HashScheme::<RealPmem, u64, u64>::instrumentation(t),
        }
    }
}

/// One-line probe-distribution context for a bench's setup phase, e.g.
/// `probe p50 1.0 p95 2.0 max 7` — printed so wall-clock numbers can be
/// read against the search effort behind them.
pub fn probe_summary(table: &BenchScheme) -> Option<String> {
    let i = table.instrumentation()?;
    Some(format!(
        "probe p50 {:.1} p95 {:.1} max {}",
        i.probe.p50(),
        i.probe.p95(),
        i.probe.max().unwrap_or(0)
    ))
}

/// Builds a scheme on a real pool sized for `total_cells`.
pub fn build_real(name: &str, total_cells: u64, mode: ConsistencyMode) -> (RealPmem, BenchScheme) {
    type K = u64;
    type V = u64;
    let seed = 77;
    match name {
        "linear" => {
            let size = LinearProbing::<RealPmem, K, V>::required_size(total_cells);
            let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
            let t = LinearProbing::create(&mut pm, Region::new(0, size), total_cells, seed, mode)
                .unwrap();
            (pm, BenchScheme::Linear(t))
        }
        "pfht" => {
            let (b, s) = Pfht::<RealPmem, K, V>::geometry_for(total_cells);
            let size = Pfht::<RealPmem, K, V>::required_size(b, s);
            let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
            let t = Pfht::create(&mut pm, Region::new(0, size), b, s, seed, mode).unwrap();
            (pm, BenchScheme::Pfht(t))
        }
        "path" => {
            let (lb, lv) = PathHash::<RealPmem, K, V>::geometry_for(total_cells);
            let size = PathHash::<RealPmem, K, V>::required_size(lb, lv);
            let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
            let t = PathHash::create(&mut pm, Region::new(0, size), lb, lv, seed, mode).unwrap();
            (pm, BenchScheme::Path(t))
        }
        "iceberg" => {
            let geo = Iceberg::<RealPmem, K, V>::geometry_for(total_cells);
            let (l1, l2, yard) = geo;
            let size = Iceberg::<RealPmem, K, V>::required_size(l1, l2, yard);
            let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
            let t = Iceberg::create(&mut pm, Region::new(0, size), geo, seed, mode, MetaMode::On)
                .unwrap();
            (pm, BenchScheme::Iceberg(t))
        }
        "group" => {
            let cfg =
                GroupHashConfig::new(total_cells / 2, 256.min(total_cells / 2)).with_seed(seed);
            let size = GroupHash::<RealPmem, K, V>::required_size(&cfg);
            let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
            let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
            (pm, BenchScheme::Group(t))
        }
        other => panic!("unknown scheme {other}"),
    }
}

/// Fills `table` to `load_factor`, returning the resident keys.
pub fn fill_real(
    pm: &mut RealPmem,
    table: &mut BenchScheme,
    load_factor: f64,
    seed: u64,
) -> Vec<u64> {
    let target = (table.capacity() as f64 * load_factor) as usize;
    let mut trace = RandomNum::new(seed);
    let mut keys = Vec::with_capacity(target);
    while keys.len() < target {
        let k = trace.next_key();
        match table.insert(pm, k, k ^ 0xFFFF) {
            Ok(()) => keys.push(k),
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("{e}"),
        }
    }
    keys
}

/// Fresh keys disjoint from a fill produced by `fill_real(seed)` — drawn
/// from the same generator continued past the fill.
pub fn fresh_keys(seed: u64, skip: usize, n: usize) -> Vec<u64> {
    let mut trace = RandomNum::new(seed);
    let _ = trace.take_keys(skip);
    trace.take_keys(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_summary_available_after_fill() {
        for name in ["linear", "pfht", "path", "iceberg", "group"] {
            let (mut pm, mut t) = build_real(name, 1 << 10, ConsistencyMode::None);
            let keys = fill_real(&mut pm, &mut t, 0.3, 3);
            assert!(!keys.is_empty());
            let s = probe_summary(&t).expect("instrument enabled via gh-harness");
            assert!(s.contains("p50"), "{name}: {s}");
        }
    }
}
