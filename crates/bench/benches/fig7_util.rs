//! Figure 7 analogue: time-to-saturation and achieved space utilization.
//!
//! Space utilization itself is a deterministic quantity (the harness
//! `fig7` binary reports it); this bench measures the *cost* of filling
//! each bounded-utilization scheme to its saturation point, and prints
//! the utilization it reached as auxiliary output.

use criterion::{criterion_group, criterion_main, Criterion};
use gh_bench::build_real;
use nvm_table::ConsistencyMode;
use nvm_traces::{RandomNum, Trace};

const CELLS: u64 = 1 << 12;

fn bench_fill_to_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7/fill_until_full");
    g.sample_size(10);
    for scheme in ["pfht", "path", "iceberg", "group"] {
        g.bench_function(scheme, |b| {
            b.iter(|| {
                let (mut pm, mut table) = build_real(scheme, CELLS, ConsistencyMode::None);
                let mut trace = RandomNum::new(3);
                let mut n = 0u64;
                loop {
                    let k = trace.next_key();
                    if table.insert(&mut pm, k, k).is_err() {
                        break;
                    }
                    n += 1;
                }
                n
            })
        });
        // Auxiliary: report the deterministic utilization once.
        let (mut pm, mut table) = build_real(scheme, CELLS, ConsistencyMode::None);
        let mut trace = RandomNum::new(3);
        let mut n = 0u64;
        while table.insert(&mut pm, trace.next_key(), 0).is_ok() {
            n += 1;
        }
        println!(
            "[fig7] {scheme}: utilization {:.1}% ({n}/{} cells)",
            100.0 * n as f64 / table.capacity() as f64,
            table.capacity()
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_fill_to_full
}
criterion_main!(benches);
