//! Probe-path benches for the DRAM fingerprint cache (DESIGN.md § The
//! fingerprint cache).
//!
//! The cache trades one DRAM byte per cell for skipping the NVM key read
//! of almost every mismatching occupied cell. Wall-clock wins should show
//! up where scans are longest: negative lookups at large group sizes.
//! Positive lookups bound the overhead of the extra tag computation.

use criterion::{criterion_group, criterion_main, Criterion};
use gh_bench::{fresh_keys, BENCH_NVM_NS};
use group_hash::{FpMode, GroupHash, GroupHashConfig};
use nvm_pmem::{RealPmem, Region};
use nvm_table::InsertError;
use nvm_traces::{RandomNum, Trace};

const CELLS_PER_LEVEL: u64 = 1 << 13;
const SEED: u64 = 8;

fn build(cfg: GroupHashConfig) -> (RealPmem, GroupHash<RealPmem, u64, u64>, Vec<u64>) {
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    let mut trace = RandomNum::new(SEED);
    let mut filled = Vec::new();
    while (filled.len() as u64) < CELLS_PER_LEVEL {
        let k = trace.next_key();
        match t.insert(&mut pm, k, k) {
            Ok(()) => filled.push(k),
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("{e}"),
        }
    }
    (pm, t, filled)
}

fn bench_mode(c: &mut Criterion, group_size: u64, fp: FpMode) {
    let label = match fp {
        FpMode::Off => "off",
        FpMode::On => "on",
    };
    let cfg = GroupHashConfig::new(CELLS_PER_LEVEL, group_size)
        .with_seed(SEED)
        .with_fp_mode(fp);
    let (pm, table, filled) = build(cfg);
    // fresh_keys skips the fill stream's prefix (plus the possible final
    // rejected draw), so these all miss.
    let absent = fresh_keys(SEED, filled.len() + 1, 4096);
    let mut g = c.benchmark_group(format!("fp_probe/gs{group_size}"));
    let mut pi = 0usize;
    g.bench_function(format!("{label}/positive"), |b| {
        b.iter(|| {
            let k = filled[pi % filled.len()];
            pi += 1;
            assert!(table.get(&pm, &k).is_some());
        })
    });
    let mut ni = 0usize;
    g.bench_function(format!("{label}/negative"), |b| {
        b.iter(|| {
            let k = absent[ni % absent.len()];
            ni += 1;
            assert!(table.get(&pm, &k).is_none());
        })
    });
    g.finish();
}

fn fp_probe(c: &mut Criterion) {
    for gs in [16u64, 64, 256] {
        bench_mode(c, gs, FpMode::Off);
        bench_mode(c, gs, FpMode::On);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fp_probe
}
criterion_main!(benches);
