//! Write scaling: concurrent inserts across threads (tentpole write path).
//!
//! The sharded table's insert fast path claims cells with a single
//! 8-byte CAS on the occupancy-bitmap word while holding only the
//! shard's *read* latch, so writers to different groups — and even to
//! different cells of one group — proceed without serializing. This
//! bench measures aggregate insert throughput at 1, 2, 4, and 8 threads
//! over a `RealPmem`-backed `ShardedGroupHash`, for a pure insert
//! workload and a 50/50 insert/get mix.
//!
//! Interpreting the numbers: on a multi-core host the insert-heavy
//! curve should scale near-linearly until the pmem write latency or
//! memory bandwidth dominates; on a single-core host (CI containers)
//! the threads time-slice one CPU and the curve is flat — the bench
//! still exercises the contended CAS/latch machinery, but the speedup
//! claim can only be observed on real parallel hardware.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use group_hash::{GroupHashConfig, ShardedGroupHash};
use nvm_pmem::RealPmem;

const SHARDS: usize = 8;
const CELLS_PER_LEVEL: u64 = 1 << 12;
const OPS_PER_THREAD: u64 = 2048;

type Table = ShardedGroupHash<RealPmem, u64, u64>;

fn fresh_table() -> Table {
    let cfg = GroupHashConfig::new(CELLS_PER_LEVEL, 16);
    // Zero emulated write latency: the bench isolates the coordination
    // cost (CAS, latches, seqlock bumps), not the 300 ns NVM stall.
    ShardedGroupHash::create(SHARDS, cfg, |_, size| {
        RealPmem::with_write_latency(size, 0)
    })
    .expect("create shards")
}

/// Disjoint per-thread key ranges: thread `ti` owns
/// `[ti * OPS_PER_THREAD, (ti + 1) * OPS_PER_THREAD)`.
fn thread_key(ti: usize, i: u64) -> u64 {
    ti as u64 * OPS_PER_THREAD + i
}

fn bench_write_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_scaling");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(threads as u64 * OPS_PER_THREAD));
        g.bench_with_input(
            BenchmarkId::new("insert", threads),
            &threads,
            |b, &nt| {
                b.iter_batched(
                    fresh_table,
                    |t| {
                        std::thread::scope(|s| {
                            for ti in 0..nt {
                                let t = &t;
                                s.spawn(move || {
                                    for i in 0..OPS_PER_THREAD {
                                        let k = thread_key(ti, i);
                                        t.insert(k, k ^ 0xFF).unwrap();
                                    }
                                });
                            }
                        });
                        t
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        g.bench_with_input(BenchmarkId::new("mixed_50_50", threads), &threads, |b, &nt| {
            b.iter_batched(
                fresh_table,
                |t| {
                    std::thread::scope(|s| {
                        for ti in 0..nt {
                            let t = &t;
                            s.spawn(move || {
                                let mut inserted = 0u64;
                                for i in 0..OPS_PER_THREAD {
                                    if i % 2 == 0 {
                                        let k = thread_key(ti, inserted);
                                        t.insert(k, k ^ 0xFF).unwrap();
                                        inserted += 1;
                                    } else {
                                        // Read back a key this thread
                                        // already wrote: always a hit.
                                        let k = thread_key(ti, i % inserted);
                                        assert!(t.get(&k).is_some());
                                    }
                                }
                            });
                        }
                    });
                    t
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_write_scaling);
criterion_main!(benches);
