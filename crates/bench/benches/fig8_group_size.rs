//! Figure 8 analogue: group size vs wall-clock operation latency.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gh_bench::{fresh_keys, BENCH_NVM_NS};
use group_hash::{GroupHash, GroupHashConfig};
use nvm_pmem::{RealPmem, Region};
use nvm_table::InsertError;
use nvm_traces::{RandomNum, Trace};

const CELLS_PER_LEVEL: u64 = 1 << 13;
const SEED: u64 = 6;

fn build(group_size: u64) -> (RealPmem, GroupHash<RealPmem, u64, u64>, Vec<u64>) {
    let cfg = GroupHashConfig::new(CELLS_PER_LEVEL, group_size).with_seed(SEED);
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    let mut trace = RandomNum::new(SEED);
    let target = CELLS_PER_LEVEL; // LF 0.5 of both levels
    let mut filled = Vec::with_capacity(target as usize);
    while (filled.len() as u64) < target {
        let k = trace.next_key();
        match t.insert(&mut pm, k, k) {
            Ok(()) => filled.push(k),
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("{e}"),
        }
    }
    (pm, t, filled)
}

fn bench_group_sizes(c: &mut Criterion) {
    for gs in [64u64, 128, 256, 512, 1024] {
        let (mut pm, mut table, filled) = build(gs);
        let fresh = fresh_keys(SEED, filled.len(), 4096);

        let mut g = c.benchmark_group(format!("fig8/g{gs}"));
        let mut qi = 0usize;
        g.bench_function("query", |b| {
            b.iter(|| {
                let k = filled[qi % filled.len()];
                qi += 1;
                assert!(table.get(&pm, &k).is_some());
            })
        });
        let mut ii = 0usize;
        g.bench_function("insert_delete", |b| {
            b.iter_batched(
                || {
                    let k = fresh[ii % fresh.len()];
                    ii += 1;
                    k
                },
                |k| {
                    table.insert(&mut pm, k, k).unwrap();
                    assert!(table.remove(&mut pm, &k));
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_group_sizes
}
criterion_main!(benches);
