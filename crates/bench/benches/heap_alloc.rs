//! Value-heap allocate/free/overwrite wall-clock cost.
//!
//! Each heap allocation is one slot write plus a single failure-atomic
//! bitmap-word publish (2 flushes / 2 fences / 1 atomic pinned budget);
//! a free is one bitmap publish (1/1/1). This bench measures what those
//! budgets cost in wall-clock on an NVM-latency pmem across value-size
//! distributions, and whether wear-aware slab rotation adds measurable
//! overhead versus first-fit placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gh_bench::BENCH_NVM_NS;
use nvm_alloc::{
    ClassSpec, ClassTable, HeapConfig, PmemHeap, PmemPtr, RotationPolicy, DEFAULT_BASE,
    DEFAULT_GROWTH, LEN_PREFIX,
};
use nvm_pmem::{RealPmem, Region};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const OPS: usize = 2048;

/// Sizes each class to hold the whole blob list at once (the fresh
/// burst keeps everything live) with 1.5x slack, so no distribution
/// exhausts a class mid-measurement.
fn config_for(blobs: &[Vec<u8>]) -> HeapConfig {
    let table = ClassTable::geometric(DEFAULT_BASE, DEFAULT_GROWTH, 4096 - LEN_PREFIX as u64)
        .expect("default geometric table is valid");
    let mut need = vec![0u64; table.len()];
    for b in blobs {
        need[table.class_for(b.len()).unwrap()] += 1;
    }
    let slabs_per_class = 4u64;
    let classes = table
        .iter()
        .enumerate()
        .map(|(i, c)| ClassSpec {
            slot_size: c.slot_size,
            slots_per_slab: (need[i] * 3 / 2).div_ceil(slabs_per_class).max(4),
        })
        .collect();
    HeapConfig {
        classes,
        slabs_per_class,
    }
}

fn build_heap(config: &HeapConfig, policy: RotationPolicy) -> (RealPmem, PmemHeap) {
    let size = PmemHeap::required_size(config);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let mut heap = PmemHeap::create(&mut pm, Region::new(0, size), config).unwrap();
    heap.set_rotation(policy);
    (pm, heap)
}

/// A named value-size sampler for one benchmark arm.
type SizeDist = (&'static str, Box<dyn FnMut(&mut SmallRng) -> usize>);

/// (name, sampler) pairs for the value-size distributions swept.
fn dists() -> Vec<SizeDist> {
    vec![
        ("uniform-16-64", Box::new(|r: &mut SmallRng| r.gen_range(16..=64))),
        (
            "hot-24-cold-512",
            Box::new(|r: &mut SmallRng| if r.gen_range(0..10usize) < 9 { 24 } else { 512 }),
        ),
        ("mixed-16-1024", Box::new(|r: &mut SmallRng| r.gen_range(16..=1024))),
    ]
}

fn bench_alloc_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_alloc");
    g.sample_size(10);
    g.throughput(Throughput::Elements(OPS as u64));

    for (name, mut sample) in dists() {
        // Pre-draw the blob sizes so the RNG stays out of the timing.
        let mut rng = SmallRng::seed_from_u64(0x4845_4150);
        let sizes: Vec<usize> = (0..OPS).map(|_| sample(&mut rng)).collect();
        let blobs: Vec<Vec<u8>> = sizes.iter().map(|&n| vec![0xAB; n]).collect();
        let config = config_for(&blobs);

        // Fresh-allocation burst: OPS allocs into an empty heap.
        g.bench_with_input(BenchmarkId::new("alloc", name), &blobs, |b, blobs| {
            b.iter(|| {
                let (mut pm, mut heap) = build_heap(&config, RotationPolicy::WearAware);
                for blob in blobs {
                    heap.alloc(&mut pm, blob).unwrap();
                }
                heap
            })
        });

        // Alloc+free round trip: the slot churn steady state.
        g.bench_with_input(BenchmarkId::new("alloc+free", name), &blobs, |b, blobs| {
            b.iter(|| {
                let (mut pm, mut heap) = build_heap(&config, RotationPolicy::WearAware);
                for blob in blobs {
                    let ptr = heap.alloc(&mut pm, blob).unwrap();
                    heap.free(&mut pm, ptr).unwrap();
                }
                heap
            })
        });

        // Overwrite mix against a resident working set, once per
        // rotation policy: alloc-new + free-old, the KV update path.
        for (label, policy) in [
            ("overwrite/wear-aware", RotationPolicy::WearAware),
            ("overwrite/first-fit", RotationPolicy::FirstFit),
        ] {
            g.bench_with_input(BenchmarkId::new(label, name), &blobs, |b, blobs| {
                b.iter(|| {
                    let (mut pm, mut heap) = build_heap(&config, policy);
                    let resident = 256.min(blobs.len());
                    let mut ptrs: Vec<PmemPtr> = blobs[..resident]
                        .iter()
                        .map(|blob| heap.alloc(&mut pm, blob).unwrap())
                        .collect();
                    for (i, blob) in blobs.iter().enumerate() {
                        let new = heap.alloc(&mut pm, blob).unwrap();
                        let old = std::mem::replace(&mut ptrs[i % resident], new);
                        heap.free(&mut pm, old).unwrap();
                    }
                    heap
                })
            });
        }
    }

    g.finish();
}

criterion_group!(benches, bench_alloc_free);
criterion_main!(benches);
