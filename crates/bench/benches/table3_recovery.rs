//! Table 3 analogue: wall-clock recovery time vs table size, compared to
//! the build time (the paper reports recovery at ≈0.93 % of the build).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gh_bench::BENCH_NVM_NS;
use group_hash::{GroupHash, GroupHashConfig};
use nvm_pmem::{RealPmem, Region};
use nvm_traces::{RandomNum, Trace};
use std::time::Instant;

fn build_filled(cells_per_level: u64) -> (RealPmem, GroupHash<RealPmem, u64, u64>) {
    let cfg = GroupHashConfig::new(cells_per_level, 256.min(cells_per_level));
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    let mut trace = RandomNum::new(1);
    for _ in 0..cells_per_level {
        // LF 0.5 overall
        let k = trace.next_key();
        let _ = t.insert(&mut pm, k, k);
    }
    (pm, t)
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/recovery");
    g.sample_size(10);
    for log2 in [12u32, 13, 14, 15] {
        let cells_per_level = 1u64 << log2;
        // Build once (outside the measured region) and report build time
        // for the percentage comparison.
        let t0 = Instant::now();
        let (mut pm, mut table) = build_filled(cells_per_level);
        let build = t0.elapsed();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("2^{}cells", log2 + 1)),
            &cells_per_level,
            |b, _| b.iter(|| table.recover(&mut pm)),
        );
        // One-shot percentage print (recovery after the bench warm-up is
        // representative: the table state is unchanged by recover()).
        let r0 = Instant::now();
        table.recover(&mut pm);
        let rec = r0.elapsed();
        println!(
            "[table3] 2^{} cells: build {:?}, recovery {:?} ({:.2}%)",
            log2 + 1,
            build,
            rec,
            100.0 * rec.as_secs_f64() / build.as_secs_f64()
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_recovery
}
criterion_main!(benches);
