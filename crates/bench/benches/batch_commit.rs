//! Batched inserts vs one-by-one inserts (tentpole write path).
//!
//! `insert_batch` stages K cell writes behind one shared drain fence
//! and one count commit, so a K-op batch pays K + 2 fences instead of
//! 3K. On hardware where the fence (and its write-queue drain) is the
//! dominant insert cost, throughput should approach 3x single-op as K
//! grows; journal chunking caps the win for undo-logged schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gh_bench::BENCH_NVM_NS;
use group_hash::{GroupHash, GroupHashConfig};
use nvm_pmem::{RealPmem, Region};
use nvm_traces::{RandomNum, Trace};

fn build_empty(cells_per_level: u64) -> (RealPmem, GroupHash<RealPmem, u64, u64>) {
    let cfg = GroupHashConfig::new(cells_per_level, 256.min(cells_per_level));
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    (pm, t)
}

fn bench_batch_vs_single(c: &mut Criterion) {
    let cells_per_level = 1u64 << 13;
    let n_entries = (cells_per_level / 2) as usize; // LF 0.25 overall
    let entries: Vec<(u64, u64)> = RandomNum::new(7)
        .take_keys(n_entries)
        .into_iter()
        .map(|k| (k, k ^ 0xFF))
        .collect();

    let mut g = c.benchmark_group("batch_commit");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n_entries as u64));

    g.bench_with_input(BenchmarkId::new("single", 1), &entries, |b, entries| {
        b.iter(|| {
            let (mut pm, mut t) = build_empty(cells_per_level);
            for &(k, v) in entries {
                t.insert(&mut pm, k, v).unwrap();
            }
            t
        })
    });

    for batch in [16usize, 64, 256] {
        g.bench_with_input(
            BenchmarkId::new("batched", batch),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let (mut pm, mut t) = build_empty(cells_per_level);
                    for chunk in entries.chunks(batch) {
                        t.insert_batch(&mut pm, chunk).unwrap();
                    }
                    t
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_batch_vs_single);
criterion_main!(benches);
