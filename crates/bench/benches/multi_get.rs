//! Vectorized multi-get vs a sequential `get` loop (tentpole read path).
//!
//! `get_batch` hashes the whole key vector up front, issues a hardware
//! prefetch (`_mm_prefetch` on x86) for every candidate line, and only
//! then resolves the probes, so the per-key memory latencies overlap
//! instead of serializing. The win grows with batch size (a batch of 1
//! degenerates to `get` plus prefetch-issue cost) and with memory
//! latency: on a DRAM-resident fixture that fits in the LLC — like this
//! one on most hosts — sequential gets are already cache-fed and the
//! pipeline's fixed costs can make it a wash or a small loss. That is
//! the expected reading here; the batch-size *trend* (128 beating 1) is
//! the property this bench guards. The simulated-NVM counterpart
//! (`cargo run -p gh-harness --bin multi_get`) runs the same sweep with
//! modeled NVM latencies and a cold cache per arm, where the overlap
//! shows up as the multi-x per-key speedup reported in
//! `results/multi_get.csv`.
//!
//! Positive and negative phases are measured separately because they
//! stress different lines: hits usually stop at the level-1 cell,
//! misses scan whole level-2 groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use group_hash::{GroupHash, GroupHashConfig};
use nvm_pmem::{RealPmem, Region};

const CELLS_PER_LEVEL: u64 = 1 << 15;
const GROUP_SIZE: u64 = 64;
const OPS: usize = 4096;
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

struct Fixture {
    pm: RealPmem,
    t: GroupHash<RealPmem, u64, u64>,
    positive: Vec<u64>,
    negative: Vec<u64>,
}

/// Builds a half-full table plus hit/miss key vectors. Keys are spread
/// with a multiplicative stride so consecutive queries land in
/// unrelated groups — the cache-hostile pattern the prefetch pipeline
/// is for.
fn fixture() -> Fixture {
    let cfg = GroupHashConfig::new(CELLS_PER_LEVEL, GROUP_SIZE);
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::new(size);
    let mut t = GroupHash::<_, u64, u64>::create(&mut pm, Region::new(0, size), cfg).unwrap();
    let mut present = Vec::new();
    let mut k = 0u64;
    while present.len() < (CELLS_PER_LEVEL / 2) as usize {
        k = k.wrapping_add(0x9E37_79B9_7F4A_7C15);
        if t.insert(&mut pm, k, !k).is_ok() {
            present.push(k);
        }
    }
    let positive: Vec<u64> = (0..OPS).map(|i| present[(i * 131) % present.len()]).collect();
    // Odd keys from a different stride stream; the fill stream above
    // never produces them (different generator), so they all miss.
    let negative: Vec<u64> = (0..OPS as u64)
        .map(|i| (i.wrapping_mul(0xD134_2543_DE82_EF95)) | 1)
        .filter(|k| t.get(&pm, k).is_none())
        .collect();
    Fixture {
        pm,
        t,
        positive,
        negative,
    }
}

fn bench_multi_get(c: &mut Criterion) {
    let fx = fixture();
    for (phase, keys) in [("positive", &fx.positive), ("negative", &fx.negative)] {
        let mut g = c.benchmark_group(format!("multi_get/{phase}"));
        g.throughput(Throughput::Elements(keys.len() as u64));
        g.bench_function("sequential_get", |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for k in keys {
                    hits += fx.t.get(&fx.pm, k).is_some() as usize;
                }
                hits
            })
        });
        for batch in BATCH_SIZES {
            g.bench_with_input(
                BenchmarkId::new("get_batch", batch),
                &batch,
                |b, &batch| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for chunk in keys.chunks(batch) {
                            for v in fx.t.get_batch(&fx.pm, chunk) {
                                hits += v.is_some() as usize;
                            }
                        }
                        hits
                    })
                },
            );
        }
        g.finish();
    }
}

criterion_group!(benches, bench_multi_get);
criterion_main!(benches);
