//! Ablation benches for group hashing's three design choices (DESIGN.md):
//!
//! * `commit`: 8-byte atomic bitmap commit vs forced undo logging —
//!   what eliminating duplicate-copy writes buys (contribution 1);
//! * `locality`: contiguous vs strided group layout — what contiguity of
//!   the collision-resolution cells buys (contribution 2);
//! * `count`: persistent vs DRAM-rebuilt `count` — the cost of the
//!   paper's per-op count flush.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gh_bench::{fresh_keys, BENCH_NVM_NS};
use group_hash::{ChoiceMode, CommitStrategy, CountMode, GroupHash, GroupHashConfig, ProbeLayout};
use nvm_pmem::{RealPmem, Region};
use nvm_table::InsertError;
use nvm_traces::{RandomNum, Trace};

const CELLS_PER_LEVEL: u64 = 1 << 13;
const SEED: u64 = 8;

fn build(cfg: GroupHashConfig) -> (RealPmem, GroupHash<RealPmem, u64, u64>, Vec<u64>) {
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    let mut trace = RandomNum::new(SEED);
    let mut filled = Vec::new();
    while (filled.len() as u64) < CELLS_PER_LEVEL {
        let k = trace.next_key();
        match t.insert(&mut pm, k, k) {
            Ok(()) => filled.push(k),
            Err(InsertError::TableFull) => break,
            Err(e) => panic!("{e}"),
        }
    }
    (pm, t, filled)
}

fn bench_variant(
    c: &mut Criterion,
    group: &str,
    label: &str,
    cfg: GroupHashConfig,
) {
    let (mut pm, mut table, filled) = build(cfg);
    let fresh = fresh_keys(SEED, filled.len(), 4096);
    let mut g = c.benchmark_group(group.to_string());
    let mut ii = 0usize;
    g.bench_function(format!("{label}/insert_delete"), |b| {
        b.iter_batched(
            || {
                let k = fresh[ii % fresh.len()];
                ii += 1;
                k
            },
            |k| {
                table.insert(&mut pm, k, k).unwrap();
                assert!(table.remove(&mut pm, &k));
            },
            BatchSize::SmallInput,
        )
    });
    let mut qi = 0usize;
    g.bench_function(format!("{label}/query"), |b| {
        b.iter(|| {
            let k = filled[qi % filled.len()];
            qi += 1;
            assert!(table.get(&pm, &k).is_some());
        })
    });
    g.finish();
}

fn ablation_commit(c: &mut Criterion) {
    let base = GroupHashConfig::new(CELLS_PER_LEVEL, 256).with_seed(SEED);
    bench_variant(c, "ablation/commit", "atomic_bitmap", base);
    bench_variant(
        c,
        "ablation/commit",
        "undo_log",
        base.with_commit(CommitStrategy::UndoLog),
    );
}

fn ablation_locality(c: &mut Criterion) {
    let base = GroupHashConfig::new(CELLS_PER_LEVEL, 256).with_seed(SEED);
    bench_variant(c, "ablation/locality", "contiguous", base);
    bench_variant(
        c,
        "ablation/locality",
        "strided",
        base.with_probe(ProbeLayout::Strided),
    );
}

fn ablation_choice(c: &mut Criterion) {
    let base = GroupHashConfig::new(CELLS_PER_LEVEL, 256).with_seed(SEED);
    bench_variant(c, "ablation/choice", "single_hash", base);
    bench_variant(
        c,
        "ablation/choice",
        "two_choice",
        base.with_choice(ChoiceMode::TwoChoice),
    );
}

fn ablation_count(c: &mut Criterion) {
    let base = GroupHashConfig::new(CELLS_PER_LEVEL, 256).with_seed(SEED);
    bench_variant(c, "ablation/count", "persistent", base);
    bench_variant(
        c,
        "ablation/count",
        "volatile",
        base.with_count_mode(CountMode::Volatile),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ablation_commit, ablation_locality, ablation_count, ablation_choice
}
criterion_main!(benches);
