//! Wall-clock analogue of Figure 2: the cost of undo logging on the three
//! baseline schemes (insert and delete paths; queries are read-only and
//! unaffected).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gh_bench::{build_real, fill_real, fresh_keys};
use nvm_table::ConsistencyMode;

const CELLS: u64 = 1 << 14;
const SEED: u64 = 9;

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/insert_delete_pair");
    for scheme in ["linear", "pfht", "path"] {
        for (mode, tag) in [
            (ConsistencyMode::None, ""),
            (ConsistencyMode::UndoLog, "-L"),
        ] {
            let (mut pm, mut table) = build_real(scheme, CELLS, mode);
            let filled = fill_real(&mut pm, &mut table, 0.5, SEED);
            let keys = fresh_keys(SEED, filled.len(), 4096);
            let mut i = 0usize;
            g.bench_function(format!("{scheme}{tag}"), |b| {
                b.iter_batched(
                    || {
                        let k = keys[i % keys.len()];
                        i += 1;
                        k
                    },
                    |k| {
                        // Insert + delete keeps the load factor steady so
                        // every iteration sees the same table shape.
                        table.insert(&mut pm, k, k).unwrap();
                        assert!(table.remove(&mut pm, &k));
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_updates
}
criterion_main!(benches);
