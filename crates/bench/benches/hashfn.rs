//! Micro-benchmarks of the hashing/digest substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvm_hashfn::{md5, murmur3_x64_128, splitmix64, xxhash64, HashKey};

fn bench_hashes(c: &mut Criterion) {
    let data_1k: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();

    let mut g = c.benchmark_group("hashfn/1KiB");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("xxhash64", |b| b.iter(|| xxhash64(&data_1k, 7)));
    g.bench_function("murmur3_x64_128", |b| b.iter(|| murmur3_x64_128(&data_1k, 7)));
    g.bench_function("md5", |b| b.iter(|| md5(&data_1k)));
    g.finish();

    let mut g = c.benchmark_group("hashfn/key");
    let mut k = 0u64;
    g.bench_function("u64_hash64", |b| {
        b.iter(|| {
            k = k.wrapping_add(1);
            k.hash64(3)
        })
    });
    let digest = [7u8; 16];
    g.bench_function("md5key_hash64", |b| b.iter(|| digest.hash64(3)));
    let mut s = 0u64;
    g.bench_function("splitmix64", |b| {
        b.iter(|| {
            s = s.wrapping_add(1);
            splitmix64(s)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hashes);
criterion_main!(benches);
