//! Read scaling: shared-read lookups across threads (tentpole read path).
//!
//! The `&self` read port means one `GroupReadView` plus cloned
//! [`Pmem::read_handle`]s can serve lookups from many threads with no
//! lock and no shared mutable state. This bench fixes a populated
//! `RealPmem` table and measures aggregate lookup throughput at 1, 2,
//! and 4 threads — if the read path truly shares nothing mutable,
//! elements/sec should scale close to linearly until memory bandwidth
//! saturates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use group_hash::{GroupHash, GroupHashConfig};
use nvm_pmem::{Pmem, RealPmem, Region};

const CELLS_PER_LEVEL: u64 = 1 << 13;
const OPS_PER_THREAD: u64 = 4096;

fn bench_read_scaling(c: &mut Criterion) {
    let cfg = GroupHashConfig::new(CELLS_PER_LEVEL, 256);
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::new(size);
    let mut t = GroupHash::<_, u64, u64>::create(&mut pm, Region::new(0, size), cfg).unwrap();
    let n_keys = CELLS_PER_LEVEL / 2; // 25% of total capacity
    for k in 0..n_keys {
        t.insert(&mut pm, k, k ^ 0xFF).unwrap();
    }
    let view = t.read_view();
    let reader = pm.read_handle();

    let mut g = c.benchmark_group("read_scaling");
    for threads in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(threads as u64 * OPS_PER_THREAD));
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &nt| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for ti in 0..nt {
                        let r = reader.clone();
                        s.spawn(move || {
                            // Odd per-thread stride: covers the key
                            // space without threads probing in step.
                            let stride = 2 * ti as u64 + 1;
                            let mut k = ti as u64 % n_keys;
                            let mut hits = 0u64;
                            for _ in 0..OPS_PER_THREAD {
                                if view.get(&r, &k).is_some() {
                                    hits += 1;
                                }
                                k = (k + stride) % n_keys;
                            }
                            assert_eq!(hits, OPS_PER_THREAD);
                        });
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_read_scaling);
criterion_main!(benches);
