//! Bulk load vs one-by-one inserts (extension feature).
//!
//! `GroupHash::bulk_load` applies the insert ordering proof at region
//! granularity: write all cells → persist → publish bitmap words →
//! commit count. Per-op flush counts drop from ~3 to ~0.05, so initial
//! loads run several times faster while staying crash-consistent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gh_bench::BENCH_NVM_NS;
use group_hash::{GroupHash, GroupHashConfig};
use nvm_pmem::{RealPmem, Region};
use nvm_traces::{RandomNum, Trace};

fn build_empty(cells_per_level: u64) -> (RealPmem, GroupHash<RealPmem, u64, u64>) {
    let cfg = GroupHashConfig::new(cells_per_level, 256.min(cells_per_level));
    let size = GroupHash::<RealPmem, u64, u64>::required_size(&cfg);
    let mut pm = RealPmem::with_write_latency(size, BENCH_NVM_NS);
    let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();
    (pm, t)
}

fn bench_bulk_vs_incremental(c: &mut Criterion) {
    let cells_per_level = 1u64 << 13;
    let n_entries = (cells_per_level / 2) as usize; // LF 0.25 overall
    let entries: Vec<(u64, u64)> = RandomNum::new(5)
        .take_keys(n_entries)
        .into_iter()
        .map(|k| (k, k ^ 0xFF))
        .collect();

    let mut g = c.benchmark_group("bulk_load");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n_entries as u64));

    g.bench_with_input(
        BenchmarkId::new("incremental", n_entries),
        &entries,
        |b, entries| {
            b.iter(|| {
                let (mut pm, mut t) = build_empty(cells_per_level);
                for &(k, v) in entries {
                    t.insert(&mut pm, k, v).unwrap();
                }
                t
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("bulk", n_entries),
        &entries,
        |b, entries| {
            b.iter(|| {
                let (mut pm, mut t) = build_empty(cells_per_level);
                let r = t.bulk_load(&mut pm, entries.iter().copied());
                assert_eq!(r.rejected, 0);
                t
            })
        },
    );

    g.finish();
}

criterion_group!(benches, bench_bulk_vs_incremental);
criterion_main!(benches);
