//! Loopback round-trip benches for the nvm-server front door.
//!
//! Three views of the same write path: a pipelined burst of 16 `set`s
//! through the full TCP + protocol + group-commit stack, a multi-`get`
//! round trip on the lock-free read path, and the facade's own
//! `set_batch` with no network — the delta is the front door's cost.

use std::io::{Read, Write};
use std::net::TcpStream;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nvm_kv::prelude::*;
use nvm_pmem::RealPmem;
use nvm_server::{serve, ServerConfig};

const BURST: usize = 16;
const VALUE_LEN: usize = 64;
const KEYSPACE: u64 = 4096;

fn bench_server(c: &mut Criterion) {
    let store = StoreBuilder::new()
        .capacity(64 * KEYSPACE, VALUE_LEN as u64)
        .shards(1)
        .create_with(|_, size| RealPmem::with_write_latency(size, 0))
        .expect("create");
    let handle = serve(
        store,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            coalesce: true,
        },
    )
    .expect("serve");
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.set_nodelay(true).expect("nodelay");

    let value = vec![b'v'; VALUE_LEN];
    let mut reply = vec![0u8; 64 * 1024];
    let mut k = 0u64;

    let mut g = c.benchmark_group("server_loopback");
    g.throughput(Throughput::Elements(BURST as u64));
    g.bench_function("set_burst_16", |b| {
        b.iter(|| {
            let mut wire = Vec::with_capacity(BURST * (32 + VALUE_LEN));
            for _ in 0..BURST {
                wire.extend_from_slice(
                    format!("set k:{} 0 0 {VALUE_LEN}\r\n", k % KEYSPACE).as_bytes(),
                );
                k += 1;
                wire.extend_from_slice(&value);
                wire.extend_from_slice(b"\r\n");
            }
            conn.write_all(&wire).expect("write");
            let mut acks = 0usize;
            while acks < BURST {
                let n = conn.read(&mut reply).expect("read");
                acks += reply[..n].iter().filter(|&&b| b == b'\n').count();
            }
        })
    });
    g.bench_function("get_multi_8", |b| {
        b.iter(|| {
            let mut wire = Vec::new();
            wire.extend_from_slice(b"get");
            for i in 0..8 {
                wire.extend_from_slice(format!(" k:{}", (k + i) % KEYSPACE).as_bytes());
            }
            k += 8;
            wire.extend_from_slice(b"\r\n");
            conn.write_all(&wire).expect("write");
            let mut got = Vec::new();
            while !got.ends_with(b"END\r\n") {
                let n = conn.read(&mut reply).expect("read");
                got.extend_from_slice(&reply[..n]);
            }
        })
    });
    g.finish();
    drop(conn);
    handle.shutdown();

    // The no-network floor: the same burst as one facade batch call.
    let store = StoreBuilder::new()
        .capacity(64 * KEYSPACE, VALUE_LEN as u64)
        .shards(1)
        .create_with(|_, size| RealPmem::with_write_latency(size, 0))
        .expect("create");
    let mut g = c.benchmark_group("store_direct");
    g.throughput(Throughput::Elements(BURST as u64));
    g.bench_function("set_batch_16", |b| {
        b.iter(|| {
            let keys: Vec<String> = (0..BURST)
                .map(|i| {
                    let key = format!("k:{}", (k + i as u64) % KEYSPACE);
                    key
                })
                .collect();
            k += BURST as u64;
            let items: Vec<(&[u8], &[u8])> = keys
                .iter()
                .map(|key| (key.as_bytes(), value.as_slice()))
                .collect();
            store.set_batch(&items).expect("set_batch");
        })
    });
    g.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
