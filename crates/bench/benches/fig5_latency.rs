//! Wall-clock analogue of Figure 5: per-operation latency of the
//! consistent schemes (logged baselines + group hashing) at load factors
//! 0.5 and 0.75.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gh_bench::{build_real, fill_real, fresh_keys, probe_summary, BenchScheme};
use nvm_pmem::RealPmem;
use nvm_table::ConsistencyMode;

const CELLS: u64 = 1 << 14;
const SEED: u64 = 5;

fn schemes() -> Vec<(&'static str, ConsistencyMode, String)> {
    vec![
        ("linear", ConsistencyMode::UndoLog, "linear-L".into()),
        ("pfht", ConsistencyMode::UndoLog, "PFHT-L".into()),
        ("path", ConsistencyMode::UndoLog, "path-L".into()),
        ("group", ConsistencyMode::None, "group".into()),
    ]
}

fn prepared(
    scheme: &str,
    mode: ConsistencyMode,
    lf: f64,
) -> (RealPmem, BenchScheme, Vec<u64>, Vec<u64>) {
    let (mut pm, mut table) = build_real(scheme, CELLS, mode);
    let filled = fill_real(&mut pm, &mut table, lf, SEED);
    let fresh = fresh_keys(SEED, filled.len(), 4096);
    (pm, table, filled, fresh)
}

fn bench_query(c: &mut Criterion) {
    for lf in [0.5, 0.75] {
        let mut g = c.benchmark_group(format!("fig5/query/lf{lf}"));
        for (scheme, mode, label) in schemes() {
            let (mut pm, table, filled, _) = prepared(scheme, mode, lf);
            if let Some(s) = probe_summary(&table) {
                eprintln!("[{label} lf{lf} after fill] {s}");
            }
            let mut i = 0usize;
            g.bench_function(&label, |b| {
                b.iter(|| {
                    let k = filled[i % filled.len()];
                    i += 1;
                    assert!(table.get(&mut pm, &k).is_some());
                })
            });
        }
        g.finish();
    }
}

fn bench_insert_delete(c: &mut Criterion) {
    for lf in [0.5, 0.75] {
        let mut g = c.benchmark_group(format!("fig5/insert_delete/lf{lf}"));
        for (scheme, mode, label) in schemes() {
            let (mut pm, mut table, _, fresh) = prepared(scheme, mode, lf);
            let mut i = 0usize;
            g.bench_function(&label, |b| {
                b.iter_batched(
                    || {
                        let k = fresh[i % fresh.len()];
                        i += 1;
                        k
                    },
                    |k| {
                        table.insert(&mut pm, k, k).unwrap();
                        assert!(table.remove(&mut pm, &k));
                    },
                    BatchSize::SmallInput,
                )
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_query, bench_insert_delete
}
criterion_main!(benches);
