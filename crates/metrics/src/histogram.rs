//! Fixed-bucket histograms with interpolated quantiles.
//!
//! Buckets use Prometheus-style **inclusive upper bounds** (`le`): a value
//! `v` lands in the first bucket whose bound is `>= v`; anything above the
//! last bound lands in the implicit `+inf` overflow bucket. Quantiles
//! interpolate linearly inside the containing bucket and clamp to the
//! observed `[min, max]`, so a histogram whose bounds enumerate every
//! possible value (e.g. [`Histogram::occupancy`]) reports quantiles
//! exactly.

use crate::counter::saturating_fetch_add;
use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram of `u64` samples.
///
/// Recording takes `&self` (relaxed atomics) so lookup paths can record
/// probe lengths without threading `&mut` through the table API, and so
/// tables that embed histograms stay `Sync` for lock-free concurrent
/// readers. The atomics are statistics, not synchronization — every
/// access is `Relaxed`, and a snapshot read while writers are recording
/// may be mid-sample (quantiles remain within the observed range).
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds.
    uppers: Vec<u64>,
    /// One count per bound plus the trailing `+inf` overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Clone for Histogram {
    fn clone(&self) -> Histogram {
        Histogram {
            uppers: self.uppers.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
            sum: AtomicU64::new(self.sum.load(Ordering::Relaxed)),
            min: AtomicU64::new(self.min.load(Ordering::Relaxed)),
            max: AtomicU64::new(self.max.load(Ordering::Relaxed)),
        }
    }
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// If `uppers` is empty or not strictly increasing.
    pub fn new(uppers: Vec<u64>) -> Histogram {
        assert!(!uppers.is_empty(), "histogram needs at least one bucket");
        assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing: {uppers:?}"
        );
        let n = uppers.len() + 1; // + overflow
        Histogram {
            uppers,
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// `n` buckets of equal `width` starting at `start` (first bound is
    /// `start`, i.e. `linear(0, 1, 9)` enumerates bounds 0..=8).
    pub fn linear(start: u64, width: u64, n: usize) -> Histogram {
        assert!(width > 0, "bucket width must be positive");
        Histogram::new((0..n as u64).map(|i| start + i * width).collect())
    }

    /// `n` geometric buckets: `start, start*factor, start*factor^2, …`.
    pub fn exponential(start: u64, factor: u64, n: usize) -> Histogram {
        assert!(start > 0 && factor > 1, "need start > 0 and factor > 1");
        let mut uppers = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            uppers.push(b);
            b = b.saturating_mul(factor);
        }
        uppers.dedup(); // saturation can repeat u64::MAX
        Histogram::new(uppers)
    }

    /// Preset for probe lengths (cells or buckets examined per
    /// operation): exact buckets 1..=16, then a coarse tail. Shared by
    /// group hashing and all baselines so distributions compare directly.
    pub fn probe_lengths() -> Histogram {
        let mut uppers: Vec<u64> = (1..=16).collect();
        uppers.extend([24, 32, 48, 64, 128]);
        Histogram::new(uppers)
    }

    /// Preset for group/bucket occupancy observed at insert: one exact
    /// bucket per possible occupancy `0..=group_size`.
    pub fn occupancy(group_size: usize) -> Histogram {
        Histogram::linear(0, 1, group_size + 1)
    }

    /// Preset for per-op simulated-time latency in nanoseconds: powers of
    /// two from 32 ns to ~2 s.
    pub fn latency_ns() -> Histogram {
        Histogram::exponential(32, 2, 27)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.uppers.partition_point(|&u| u < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, v);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum() as f64 / self.count() as f64
        }
    }

    /// The bucket bounds (without the implicit `+inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.uppers
    }

    /// Count in bucket `i` (index `bounds().len()` is the overflow
    /// bucket).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i].load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the containing bucket and clamped to the observed range. Returns
    /// 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let before = cum;
            cum += n;
            if (cum as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { self.uppers[i - 1] as f64 };
                let hi = if i < self.uppers.len() {
                    self.uppers[i] as f64
                } else {
                    // Overflow bucket tops out at the observed max.
                    self.max.load(Ordering::Relaxed) as f64
                };
                let frac = ((rank - before as f64) / n as f64).clamp(0.0, 1.0);
                let v = lo + frac * (hi - lo);
                return v.clamp(
                    self.min.load(Ordering::Relaxed) as f64,
                    self.max.load(Ordering::Relaxed) as f64,
                );
            }
        }
        self.max.load(Ordering::Relaxed) as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Clears all samples, keeping the bucket layout.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Folds `other` into `self` (shard aggregation).
    ///
    /// # Panics
    /// If the bucket layouts differ.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.uppers, other.uppers,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.counts.iter().zip(&other.counts) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        saturating_fetch_add(&self.sum, other.sum.load(Ordering::Relaxed));
        if other.count() > 0 {
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max
                .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Serializes to the registry's stable histogram schema:
    /// `{count, sum, mean, min, max, p50, p95, p99, buckets: [{le, count}]}`
    /// where the final bucket's `le` is the string `"+inf"`. Empty buckets
    /// are included so the schema is identical across schemes.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("count", self.count());
        j.insert("sum", self.sum());
        j.insert("mean", self.mean());
        match (self.min(), self.max()) {
            (Some(mn), Some(mx)) => {
                j.insert("min", mn);
                j.insert("max", mx);
            }
            _ => {
                j.insert("min", Json::Null);
                j.insert("max", Json::Null);
            }
        }
        j.insert("p50", self.p50());
        j.insert("p95", self.p95());
        j.insert("p99", self.p99());
        let mut buckets = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            let mut b = Json::obj();
            match self.uppers.get(i) {
                Some(&le) => b.insert("le", le),
                None => b.insert("le", "+inf"),
            };
            b.insert("count", c.load(Ordering::Relaxed));
            buckets.push(b);
        }
        j.insert("buckets", buckets);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(vec![1, 2, 4]);
        h.record(0); // le=1
        h.record(1); // le=1 (exactly on the edge stays in its bucket)
        h.record(2); // le=2
        h.record(3); // le=4
        h.record(4); // le=4
        h.record(5); // +inf overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(3), 1); // overflow
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn quantiles_exact_with_unit_buckets() {
        // Bounds enumerate every value, so quantiles come out exact.
        let h = Histogram::linear(0, 1, 101);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p95(), 95.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = Histogram::new(vec![10, 100]);
        for _ in 0..8 {
            h.record(42); // all mass in the (10, 100] bucket
        }
        // Interpolation alone would say 10 + q*90; clamping pins every
        // quantile of a single-valued distribution to that value.
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.p99(), 42.0);
        assert_eq!(h.quantile(0.0), 42.0);
    }

    #[test]
    fn overflow_bucket_quantile_uses_observed_max() {
        let h = Histogram::new(vec![4]);
        h.record(1_000);
        h.record(2_000);
        assert_eq!(h.quantile(1.0), 2_000.0);
        assert!(h.p50() >= 4.0 && h.p50() <= 2_000.0);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::probe_lengths();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let j = h.to_json();
        assert_eq!(j.get("min"), Some(&Json::Null));
    }

    #[test]
    fn merge_requires_same_layout_and_sums() {
        let a = Histogram::occupancy(4);
        let b = Histogram::occupancy(4);
        a.record(1);
        b.record(3);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(4));
        assert_eq!(a.sum(), 8);
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_layouts() {
        let a = Histogram::new(vec![1, 2]);
        let b = Histogram::new(vec![1, 3]);
        a.merge(&b);
    }

    #[test]
    fn reset_clears_but_keeps_layout() {
        let h = Histogram::new(vec![8]);
        h.record(3);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bounds(), &[8]);
        h.record(9);
        assert_eq!(h.bucket_count(1), 1);
    }

    #[test]
    fn exponential_bounds_dedup_on_saturation() {
        let h = Histogram::exponential(1 << 62, 2, 4);
        // 2^62, 2^63, then u64::MAX once (saturated duplicates removed).
        assert_eq!(h.bounds().len(), 3);
        assert_eq!(h.bounds()[2], u64::MAX);
    }

    #[test]
    fn json_schema_has_all_keys() {
        let h = Histogram::new(vec![2, 4]);
        h.record(1);
        h.record(9);
        let j = h.to_json();
        for key in ["count", "sum", "mean", "min", "max", "p50", "p95", "p99", "buckets"] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        match j.get("buckets") {
            Some(Json::Arr(b)) => {
                assert_eq!(b.len(), 3);
                assert_eq!(b[2].get("le"), Some(&Json::Str("+inf".into())));
                assert_eq!(b[2].get("count"), Some(&Json::U64(1)));
            }
            other => panic!("buckets not an array: {other:?}"),
        }
    }
}
