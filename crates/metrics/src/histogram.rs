//! Fixed-bucket histograms with interpolated quantiles.
//!
//! Buckets use Prometheus-style **inclusive upper bounds** (`le`): a value
//! `v` lands in the first bucket whose bound is `>= v`; anything above the
//! last bound lands in the implicit `+inf` overflow bucket. Quantiles
//! interpolate linearly inside the containing bucket and clamp to the
//! observed `[min, max]`, so a histogram whose bounds enumerate every
//! possible value (e.g. [`Histogram::occupancy`]) reports quantiles
//! exactly.

use crate::json::Json;
use std::cell::Cell;

/// A fixed-bucket histogram of `u64` samples.
///
/// Recording takes `&self` (interior mutability via [`Cell`]) so lookup
/// paths can record probe lengths without threading `&mut` through the
/// table API. Not thread-safe; concurrent schemes keep one per shard and
/// [`Histogram::merge`] them.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds.
    uppers: Vec<u64>,
    /// One count per bound plus the trailing `+inf` overflow bucket.
    counts: Vec<Cell<u64>>,
    count: Cell<u64>,
    sum: Cell<u64>,
    min: Cell<u64>,
    max: Cell<u64>,
}

impl Histogram {
    /// A histogram with the given inclusive upper bounds.
    ///
    /// # Panics
    /// If `uppers` is empty or not strictly increasing.
    pub fn new(uppers: Vec<u64>) -> Histogram {
        assert!(!uppers.is_empty(), "histogram needs at least one bucket");
        assert!(
            uppers.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing: {uppers:?}"
        );
        let n = uppers.len() + 1; // + overflow
        Histogram {
            uppers,
            counts: vec![Cell::new(0); n],
            count: Cell::new(0),
            sum: Cell::new(0),
            min: Cell::new(u64::MAX),
            max: Cell::new(0),
        }
    }

    /// `n` buckets of equal `width` starting at `start` (first bound is
    /// `start`, i.e. `linear(0, 1, 9)` enumerates bounds 0..=8).
    pub fn linear(start: u64, width: u64, n: usize) -> Histogram {
        assert!(width > 0, "bucket width must be positive");
        Histogram::new((0..n as u64).map(|i| start + i * width).collect())
    }

    /// `n` geometric buckets: `start, start*factor, start*factor^2, …`.
    pub fn exponential(start: u64, factor: u64, n: usize) -> Histogram {
        assert!(start > 0 && factor > 1, "need start > 0 and factor > 1");
        let mut uppers = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            uppers.push(b);
            b = b.saturating_mul(factor);
        }
        uppers.dedup(); // saturation can repeat u64::MAX
        Histogram::new(uppers)
    }

    /// Preset for probe lengths (cells or buckets examined per
    /// operation): exact buckets 1..=16, then a coarse tail. Shared by
    /// group hashing and all baselines so distributions compare directly.
    pub fn probe_lengths() -> Histogram {
        let mut uppers: Vec<u64> = (1..=16).collect();
        uppers.extend([24, 32, 48, 64, 128]);
        Histogram::new(uppers)
    }

    /// Preset for group/bucket occupancy observed at insert: one exact
    /// bucket per possible occupancy `0..=group_size`.
    pub fn occupancy(group_size: usize) -> Histogram {
        Histogram::linear(0, 1, group_size + 1)
    }

    /// Preset for per-op simulated-time latency in nanoseconds: powers of
    /// two from 32 ns to ~2 s.
    pub fn latency_ns() -> Histogram {
        Histogram::exponential(32, 2, 27)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = self.uppers.partition_point(|&u| u < v);
        let c = &self.counts[idx];
        c.set(c.get() + 1);
        self.count.set(self.count.get() + 1);
        self.sum.set(self.sum.get().saturating_add(v));
        if v < self.min.get() {
            self.min.set(v);
        }
        if v > self.max.get() {
            self.max.set(v);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.get())
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.get())
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.sum() as f64 / self.count() as f64
        }
    }

    /// The bucket bounds (without the implicit `+inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.uppers
    }

    /// Count in bucket `i` (index `bounds().len()` is the overflow
    /// bucket).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i].get()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the containing bucket and clamped to the observed range. Returns
    /// 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.get();
            if n == 0 {
                continue;
            }
            let before = cum;
            cum += n;
            if (cum as f64) >= rank {
                let lo = if i == 0 { 0.0 } else { self.uppers[i - 1] as f64 };
                let hi = if i < self.uppers.len() {
                    self.uppers[i] as f64
                } else {
                    self.max.get() as f64 // overflow bucket tops out at the observed max
                };
                let frac = ((rank - before as f64) / n as f64).clamp(0.0, 1.0);
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min.get() as f64, self.max.get() as f64);
            }
        }
        self.max.get() as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Clears all samples, keeping the bucket layout.
    pub fn reset(&self) {
        for c in &self.counts {
            c.set(0);
        }
        self.count.set(0);
        self.sum.set(0);
        self.min.set(u64::MAX);
        self.max.set(0);
    }

    /// Folds `other` into `self` (shard aggregation).
    ///
    /// # Panics
    /// If the bucket layouts differ.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.uppers, other.uppers,
            "cannot merge histograms with different bucket layouts"
        );
        for (a, b) in self.counts.iter().zip(&other.counts) {
            a.set(a.get() + b.get());
        }
        self.count.set(self.count.get() + other.count.get());
        self.sum.set(self.sum.get().saturating_add(other.sum.get()));
        if other.count.get() > 0 {
            if other.min.get() < self.min.get() {
                self.min.set(other.min.get());
            }
            if other.max.get() > self.max.get() {
                self.max.set(other.max.get());
            }
        }
    }

    /// Serializes to the registry's stable histogram schema:
    /// `{count, sum, mean, min, max, p50, p95, p99, buckets: [{le, count}]}`
    /// where the final bucket's `le` is the string `"+inf"`. Empty buckets
    /// are included so the schema is identical across schemes.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("count", self.count());
        j.insert("sum", self.sum());
        j.insert("mean", self.mean());
        match (self.min(), self.max()) {
            (Some(mn), Some(mx)) => {
                j.insert("min", mn);
                j.insert("max", mx);
            }
            _ => {
                j.insert("min", Json::Null);
                j.insert("max", Json::Null);
            }
        }
        j.insert("p50", self.p50());
        j.insert("p95", self.p95());
        j.insert("p99", self.p99());
        let mut buckets = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            let mut b = Json::obj();
            match self.uppers.get(i) {
                Some(&le) => b.insert("le", le),
                None => b.insert("le", "+inf"),
            };
            b.insert("count", c.get());
            buckets.push(b);
        }
        j.insert("buckets", buckets);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(vec![1, 2, 4]);
        h.record(0); // le=1
        h.record(1); // le=1 (exactly on the edge stays in its bucket)
        h.record(2); // le=2
        h.record(3); // le=4
        h.record(4); // le=4
        h.record(5); // +inf overflow
        assert_eq!(h.bucket_count(0), 2);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(3), 1); // overflow
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 15);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn quantiles_exact_with_unit_buckets() {
        // Bounds enumerate every value, so quantiles come out exact.
        let h = Histogram::linear(0, 1, 101);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p95(), 95.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let h = Histogram::new(vec![10, 100]);
        for _ in 0..8 {
            h.record(42); // all mass in the (10, 100] bucket
        }
        // Interpolation alone would say 10 + q*90; clamping pins every
        // quantile of a single-valued distribution to that value.
        assert_eq!(h.p50(), 42.0);
        assert_eq!(h.p99(), 42.0);
        assert_eq!(h.quantile(0.0), 42.0);
    }

    #[test]
    fn overflow_bucket_quantile_uses_observed_max() {
        let h = Histogram::new(vec![4]);
        h.record(1_000);
        h.record(2_000);
        assert_eq!(h.quantile(1.0), 2_000.0);
        assert!(h.p50() >= 4.0 && h.p50() <= 2_000.0);
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::probe_lengths();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        let j = h.to_json();
        assert_eq!(j.get("min"), Some(&Json::Null));
    }

    #[test]
    fn merge_requires_same_layout_and_sums() {
        let a = Histogram::occupancy(4);
        let b = Histogram::occupancy(4);
        a.record(1);
        b.record(3);
        b.record(4);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(4));
        assert_eq!(a.sum(), 8);
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_layouts() {
        let a = Histogram::new(vec![1, 2]);
        let b = Histogram::new(vec![1, 3]);
        a.merge(&b);
    }

    #[test]
    fn reset_clears_but_keeps_layout() {
        let h = Histogram::new(vec![8]);
        h.record(3);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.bounds(), &[8]);
        h.record(9);
        assert_eq!(h.bucket_count(1), 1);
    }

    #[test]
    fn exponential_bounds_dedup_on_saturation() {
        let h = Histogram::exponential(1 << 62, 2, 4);
        // 2^62, 2^63, then u64::MAX once (saturated duplicates removed).
        assert_eq!(h.bounds().len(), 3);
        assert_eq!(h.bounds()[2], u64::MAX);
    }

    #[test]
    fn json_schema_has_all_keys() {
        let h = Histogram::new(vec![2, 4]);
        h.record(1);
        h.record(9);
        let j = h.to_json();
        for key in ["count", "sum", "mean", "min", "max", "p50", "p95", "p99", "buckets"] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        match j.get("buckets") {
            Some(Json::Arr(b)) => {
                assert_eq!(b.len(), 3);
                assert_eq!(b[2].get("le"), Some(&Json::Str("+inf".into())));
                assert_eq!(b[2].get("count"), Some(&Json::U64(1)));
            }
            other => panic!("buckets not an array: {other:?}"),
        }
    }
}
