//! Shared counters for concurrent read/write paths.
//!
//! Unlike [`Counter`](crate::Counter) — which is `Cell`-based and
//! deliberately single-threaded — these counters are plain relaxed
//! atomics so that many reader and writer threads can bump them through
//! a shared reference. They instrument the two interesting events of a
//! seqlock-style table:
//!
//! * a **seqlock retry**: a reader observed an odd sequence number (or a
//!   sequence change across its read) and had to re-run its lookup;
//! * a **lock wait**: a writer found the shard's mutex contended and had
//!   to block instead of acquiring it on the fast path.
//!
//! Both are *events*, not time — cheap enough to leave on permanently.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic event counters shared by the readers and writers of one
/// concurrent structure.
#[derive(Debug, Default)]
pub struct ConcurrencyCounters {
    seqlock_retries: AtomicU64,
    lock_waits: AtomicU64,
}

/// A plain-value snapshot of [`ConcurrencyCounters`], for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcurrencySnapshot {
    /// Optimistic reads that observed a concurrent write and re-ran.
    pub seqlock_retries: u64,
    /// Writer lock acquisitions that found the lock already held.
    pub lock_waits: u64,
}

impl ConcurrencyCounters {
    /// A zeroed counter set.
    pub fn new() -> ConcurrencyCounters {
        ConcurrencyCounters::default()
    }

    /// Records one reader retry caused by a concurrent writer.
    #[inline]
    pub fn note_seqlock_retry(&self) {
        self.seqlock_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one writer that had to wait for a contended shard lock.
    #[inline]
    pub fn note_lock_wait(&self) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the current values. Relaxed: values may lag concurrent
    /// increments, which is fine for reporting.
    pub fn snapshot(&self) -> ConcurrencySnapshot {
        ConcurrencySnapshot {
            seqlock_retries: self.seqlock_retries.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
        }
    }
}

impl ConcurrencySnapshot {
    /// Serializes as `{seqlock_retries, lock_waits}`.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("seqlock_retries", self.seqlock_retries);
        j.insert("lock_waits", self.lock_waits);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_through_shared_reference() {
        let c = ConcurrencyCounters::new();
        c.note_seqlock_retry();
        c.note_seqlock_retry();
        c.note_lock_wait();
        let s = c.snapshot();
        assert_eq!(s.seqlock_retries, 2);
        assert_eq!(s.lock_waits, 1);
    }

    #[test]
    fn counts_from_many_threads() {
        let c = std::sync::Arc::new(ConcurrencyCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.note_seqlock_retry();
                        c.note_lock_wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.seqlock_retries, 4000);
        assert_eq!(s.lock_waits, 4000);
    }

    #[test]
    fn json_shape() {
        let c = ConcurrencyCounters::new();
        c.note_lock_wait();
        let j = c.snapshot().to_json();
        assert_eq!(j.get("seqlock_retries").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("lock_waits").and_then(Json::as_u64), Some(1));
    }
}
