//! Shared counters for concurrent read/write paths.
//!
//! Like [`Counter`](crate::Counter), these are plain relaxed atomics so
//! that many reader and writer threads can bump them through a shared
//! reference; unlike the general-purpose counters they come pre-grouped
//! as one struct per concurrent structure. They instrument the
//! interesting events of a seqlock-style table:
//!
//! * a **seqlock retry**: a reader observed an odd sequence number (or a
//!   sequence change across its read) and had to re-run its lookup;
//! * a **lock wait**: a writer found the shard's lock contended and had
//!   to block instead of acquiring it on the fast path;
//! * a **CAS failure**: a lock-free publish/retract lost the race on an
//!   occupancy-bitmap word (or a shared counter word) and retried;
//! * a **latch wait**: a writer fell back to a group latch after losing
//!   cell claims repeatedly and had to serialize its placement;
//! * a **migration step**: one entry moved from the draining table to the
//!   active table during incremental online expansion.
//!
//! All are *events*, not time — cheap enough to leave on permanently.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic event counters shared by the readers and writers of one
/// concurrent structure.
#[derive(Debug, Default)]
pub struct ConcurrencyCounters {
    seqlock_retries: AtomicU64,
    lock_waits: AtomicU64,
    cas_failures: AtomicU64,
    latch_waits: AtomicU64,
    migration_steps: AtomicU64,
}

/// A plain-value snapshot of [`ConcurrencyCounters`], for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcurrencySnapshot {
    /// Optimistic reads that observed a concurrent write and re-ran.
    pub seqlock_retries: u64,
    /// Writer lock acquisitions that found the lock already held.
    pub lock_waits: u64,
    /// Lost compare-and-swap attempts on shared table words (occupancy
    /// bitmap, persistent count). Zero when only one writer runs.
    pub cas_failures: u64,
    /// Writers that escalated from lost cell claims to a group latch.
    pub latch_waits: u64,
    /// Entries rehashed from the draining to the active table by the
    /// incremental expansion drainer.
    pub migration_steps: u64,
}

impl ConcurrencyCounters {
    /// A zeroed counter set.
    pub fn new() -> ConcurrencyCounters {
        ConcurrencyCounters::default()
    }

    /// Records one reader retry caused by a concurrent writer.
    #[inline]
    pub fn note_seqlock_retry(&self) {
        self.seqlock_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one writer that had to wait for a contended shard lock.
    #[inline]
    pub fn note_lock_wait(&self) {
        self.lock_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` lost CAS attempts (a publish loop reports its whole
    /// retry tally at once).
    #[inline]
    pub fn note_cas_failures(&self, n: u64) {
        if n != 0 {
            self.cas_failures.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one writer escalating to a group latch.
    #[inline]
    pub fn note_latch_wait(&self) {
        self.latch_waits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` entries moved by the expansion drainer.
    #[inline]
    pub fn note_migration_steps(&self, n: u64) {
        if n != 0 {
            self.migration_steps.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Reads the current values. Relaxed: values may lag concurrent
    /// increments, which is fine for reporting.
    pub fn snapshot(&self) -> ConcurrencySnapshot {
        ConcurrencySnapshot {
            seqlock_retries: self.seqlock_retries.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            latch_waits: self.latch_waits.load(Ordering::Relaxed),
            migration_steps: self.migration_steps.load(Ordering::Relaxed),
        }
    }
}

impl ConcurrencySnapshot {
    /// Serializes as `{seqlock_retries, lock_waits, cas_failures,
    /// latch_waits, migration_steps}`.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("seqlock_retries", self.seqlock_retries);
        j.insert("lock_waits", self.lock_waits);
        j.insert("cas_failures", self.cas_failures);
        j.insert("latch_waits", self.latch_waits);
        j.insert("migration_steps", self.migration_steps);
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_through_shared_reference() {
        let c = ConcurrencyCounters::new();
        c.note_seqlock_retry();
        c.note_seqlock_retry();
        c.note_lock_wait();
        let s = c.snapshot();
        assert_eq!(s.seqlock_retries, 2);
        assert_eq!(s.lock_waits, 1);
    }

    #[test]
    fn counts_from_many_threads() {
        let c = std::sync::Arc::new(ConcurrencyCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.note_seqlock_retry();
                        c.note_lock_wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.seqlock_retries, 4000);
        assert_eq!(s.lock_waits, 4000);
    }

    #[test]
    fn json_shape() {
        let c = ConcurrencyCounters::new();
        c.note_lock_wait();
        c.note_cas_failures(3);
        c.note_latch_wait();
        c.note_migration_steps(7);
        let j = c.snapshot().to_json();
        assert_eq!(j.get("seqlock_retries").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("lock_waits").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("cas_failures").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("latch_waits").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("migration_steps").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn bulk_notes_accumulate_and_zero_is_free() {
        let c = ConcurrencyCounters::new();
        c.note_cas_failures(0);
        c.note_migration_steps(0);
        assert_eq!(c.snapshot(), ConcurrencySnapshot::default());
        c.note_cas_failures(2);
        c.note_cas_failures(5);
        c.note_migration_steps(4);
        let s = c.snapshot();
        assert_eq!(s.cas_failures, 7);
        assert_eq!(s.migration_steps, 4);
    }
}
