//! Cheap monotonic counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Saturating add on an atomic (event counts pin at `u64::MAX` rather
/// than wrapping). CAS loop; uncontended it costs one extra load.
pub(crate) fn saturating_fetch_add(a: &AtomicU64, n: u64) {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let new = cur.saturating_add(n);
        match a.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing event counter.
///
/// Uses a relaxed [`AtomicU64`] so hot read paths (`get`-style methods
/// taking `&self`) can record without `&mut` plumbing, and so tables that
/// embed counters stay `Sync` for lock-free concurrent readers. These are
/// statistics, not synchronization: all ordering is `Relaxed`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; these are event counts, not arithmetic).
    #[inline]
    pub fn add(&self, n: u64) {
        saturating_fetch_add(&self.0, n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }

    /// Folds another counter's value into this one (shard aggregation).
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_merges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let d = Counter::new();
        d.add(10);
        c.merge(&d);
        assert_eq!(c.get(), 15);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn add_saturates() {
        let c = Counter::new();
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
