//! Cheap monotonic counters.

use std::cell::Cell;

/// A monotonically increasing event counter.
///
/// Uses [`Cell`] so hot read paths (`get`-style methods taking `&self`)
/// can record without `&mut` plumbing; a bump compiles to a plain add.
/// Not thread-safe — concurrent schemes keep one per shard and merge.
#[derive(Debug, Default, Clone)]
pub struct Counter(Cell<u64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (saturating; these are event counts, not arithmetic).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.set(0);
    }

    /// Folds another counter's value into this one (shard aggregation).
    pub fn merge(&self, other: &Counter) {
        self.add(other.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_merges() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let d = Counter::new();
        d.add(10);
        c.merge(&d);
        assert_eq!(c.get(), 15);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn add_saturates() {
        let c = Counter::new();
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }
}
