//! The shared per-scheme instrumentation schema.
//!
//! Every hash scheme in the workspace — group hashing and the three
//! baselines — records the *same* three distributions so runs compare
//! directly:
//!
//! * **probe** — cells/buckets examined by one operation (paper Fig. 7's
//!   search-cost axis);
//! * **occupancy** — entries already present in the destination
//!   group/bucket when an insert lands (how full the structure runs);
//! * **displacement** — relocations performed to make room for one insert
//!   (0 for most inserts; path hashing and cuckoo-style moves raise it).
//!
//! The struct lives here, not in each scheme, so the bucket layouts are
//! identical by construction.

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::json::Json;

/// Counters for a volatile fingerprint-filter layer on the probe path.
///
/// Schemes without such a layer leave all four at zero; `key_reads` is
/// also recorded when the filter is disabled so filtered and unfiltered
/// runs report the probe path's NVM key reads in the same place.
#[derive(Debug, Default, Clone)]
pub struct FingerprintCounters {
    /// Tag matched and the key bytes matched too.
    pub hits: Counter,
    /// Occupied cells whose key read was skipped (tag mismatch).
    pub skips: Counter,
    /// Tag matched but the key bytes did not.
    pub false_positives: Counter,
    /// Key loads issued from the pool by lookup-style probes.
    pub key_reads: Counter,
}

impl FingerprintCounters {
    /// Folds another instance in (shard aggregation).
    pub fn merge(&self, other: &FingerprintCounters) {
        self.hits.merge(&other.hits);
        self.skips.merge(&other.skips);
        self.false_positives.merge(&other.false_positives);
        self.key_reads.merge(&other.key_reads);
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.hits.reset();
        self.skips.reset();
        self.false_positives.reset();
        self.key_reads.reset();
    }

    /// Serializes as a flat `{hits, skips, false_positives, key_reads}`
    /// object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("hits", Json::from(self.hits.get()));
        j.insert("skips", Json::from(self.skips.get()));
        j.insert("false_positives", Json::from(self.false_positives.get()));
        j.insert("key_reads", Json::from(self.key_reads.get()));
        j
    }
}

/// Counters for the group-commit batch path, proving fence amortization:
/// how many pmem fences/flushes the batch bodies actually spent per
/// committed op (the paper-motivated win is ~`1 + 2/K` fences/op for
/// batches of `K` versus 3 for single ops).
///
/// Schemes without a native batch path leave all four at zero; single ops
/// routed through a one-element batch count as a session of one.
#[derive(Debug, Default, Clone)]
pub struct BatchCounters {
    /// Batch commit sessions run.
    pub batches: Counter,
    /// Ops durably committed across all sessions.
    pub ops: Counter,
    /// Pmem fences issued inside batch bodies.
    pub fences: Counter,
    /// Pmem flushes issued inside batch bodies.
    pub flushes: Counter,
}

impl BatchCounters {
    /// Records one completed batch session.
    #[inline]
    pub fn record(&self, ops: u64, fences: u64, flushes: u64) {
        self.batches.inc();
        self.ops.add(ops);
        self.fences.add(fences);
        self.flushes.add(flushes);
    }

    /// Mean fences per committed op, `None` before any op commits.
    pub fn fences_per_op(&self) -> Option<f64> {
        let ops = self.ops.get();
        (ops > 0).then(|| self.fences.get() as f64 / ops as f64)
    }

    /// Folds another instance in (shard aggregation).
    pub fn merge(&self, other: &BatchCounters) {
        self.batches.merge(&other.batches);
        self.ops.merge(&other.ops);
        self.fences.merge(&other.fences);
        self.flushes.merge(&other.flushes);
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.batches.reset();
        self.ops.reset();
        self.fences.reset();
        self.flushes.reset();
    }

    /// Serializes as a flat `{batches, ops, fences, flushes}` object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("batches", Json::from(self.batches.get()));
        j.insert("ops", Json::from(self.ops.get()));
        j.insert("fences", Json::from(self.fences.get()));
        j.insert("flushes", Json::from(self.flushes.get()));
        j
    }
}

/// Counters for the value heap: allocation traffic, GC reclamation, and
/// per-slab write spread (the wear axis).
///
/// `slab_write_hist` buckets the *per-slab* write counts, so a heap that
/// rotates well shows a tight distribution (max ≈ mean) while a
/// no-rotation heap shows one hot slab and many cold ones.
#[derive(Debug, Clone)]
pub struct HeapCounters {
    /// Completed allocations.
    pub allocs: Counter,
    /// Completed frees (including GC-initiated ones).
    pub frees: Counter,
    /// Blobs relocated by the GC compactor.
    pub gc_moves: Counter,
    /// Dead/leaked blobs reclaimed by the GC sweep.
    pub leaked_reclaimed: Counter,
    /// Total slot writes across all slabs (allocs + GC copy-ins).
    pub slab_writes: Counter,
    /// Distribution of per-slab write counts.
    pub slab_write_hist: Histogram,
}

impl Default for HeapCounters {
    fn default() -> Self {
        HeapCounters {
            allocs: Counter::default(),
            frees: Counter::default(),
            gc_moves: Counter::default(),
            leaked_reclaimed: Counter::default(),
            slab_writes: Counter::default(),
            slab_write_hist: Histogram::exponential(1, 2, 20),
        }
    }
}

impl HeapCounters {
    /// Builds a snapshot from a heap's cumulative stats plus its
    /// per-slab write counters.
    pub fn from_heap(
        allocs: u64,
        frees: u64,
        gc_moves: u64,
        leaked_reclaimed: u64,
        per_slab_writes: &[u64],
    ) -> HeapCounters {
        let h = HeapCounters::default();
        h.allocs.add(allocs);
        h.frees.add(frees);
        h.gc_moves.add(gc_moves);
        h.leaked_reclaimed.add(leaked_reclaimed);
        for &w in per_slab_writes {
            h.slab_writes.add(w);
            h.slab_write_hist.record(w);
        }
        h
    }

    /// Folds another instance in (shard aggregation).
    pub fn merge(&self, other: &HeapCounters) {
        self.allocs.merge(&other.allocs);
        self.frees.merge(&other.frees);
        self.gc_moves.merge(&other.gc_moves);
        self.leaked_reclaimed.merge(&other.leaked_reclaimed);
        self.slab_writes.merge(&other.slab_writes);
        self.slab_write_hist.merge(&other.slab_write_hist);
    }

    /// Clears all counters and samples.
    pub fn reset(&self) {
        self.allocs.reset();
        self.frees.reset();
        self.gc_moves.reset();
        self.leaked_reclaimed.reset();
        self.slab_writes.reset();
        self.slab_write_hist.reset();
    }

    /// Serializes as flat counters plus the `slab_writes` histogram
    /// object (with its max/mean summarizing slab skew).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("allocs", Json::from(self.allocs.get()));
        j.insert("frees", Json::from(self.frees.get()));
        j.insert("gc_moves", Json::from(self.gc_moves.get()));
        j.insert("leaked_reclaimed", Json::from(self.leaked_reclaimed.get()));
        j.insert("slab_writes", Json::from(self.slab_writes.get()));
        j.insert("slab_write_hist", self.slab_write_hist.to_json());
        j
    }
}

/// Probe/occupancy/displacement histograms recorded by one scheme
/// instance (or one shard of a concurrent scheme).
///
/// All methods take `&self` ([`Histogram`] uses interior mutability), so
/// read paths like `get` can record without `&mut`.
#[derive(Debug, Clone)]
pub struct SchemeInstrumentation {
    /// Cells/buckets examined per operation.
    pub probe: Histogram,
    /// Destination group/bucket occupancy at insert time.
    pub occupancy: Histogram,
    /// Relocations per insert.
    pub displacement: Histogram,
    /// Fingerprint-filter effectiveness (zero for unfiltered schemes).
    pub fingerprint: FingerprintCounters,
    /// Group-commit batch amortization (zero when only single ops ran
    /// outside the batch path).
    pub batch: BatchCounters,
}

impl SchemeInstrumentation {
    /// Instrumentation sized for groups/buckets of `group_size` slots.
    pub fn new(group_size: usize) -> SchemeInstrumentation {
        SchemeInstrumentation {
            probe: Histogram::probe_lengths(),
            occupancy: Histogram::occupancy(group_size.max(1)),
            displacement: Histogram::probe_lengths(),
            fingerprint: FingerprintCounters::default(),
            batch: BatchCounters::default(),
        }
    }

    /// Records that an operation examined `cells` cells.
    #[inline]
    pub fn record_probe(&self, cells: u64) {
        self.probe.record(cells);
    }

    /// Records the destination occupancy seen by an insert.
    #[inline]
    pub fn record_occupancy(&self, entries: u64) {
        self.occupancy.record(entries);
    }

    /// Records how many entries an insert displaced.
    #[inline]
    pub fn record_displacement(&self, moves: u64) {
        self.displacement.record(moves);
    }

    /// Folds another instance in (shard aggregation).
    pub fn merge(&self, other: &SchemeInstrumentation) {
        self.probe.merge(&other.probe);
        self.occupancy.merge(&other.occupancy);
        self.displacement.merge(&other.displacement);
        self.fingerprint.merge(&other.fingerprint);
        self.batch.merge(&other.batch);
    }

    /// Clears all samples.
    pub fn reset(&self) {
        self.probe.reset();
        self.occupancy.reset();
        self.displacement.reset();
        self.fingerprint.reset();
        self.batch.reset();
    }

    /// Serializes as `{probe, occupancy, displacement}` histogram
    /// objects — the schema every scheme emits — plus a `fingerprint`
    /// counter object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("probe", self.probe.to_json());
        j.insert("occupancy", self.occupancy.to_json());
        j.insert("displacement", self.displacement.to_json());
        j.insert("fingerprint", self.fingerprint.to_json());
        j.insert("batch", self.batch.to_json());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_merges_across_shards() {
        let a = SchemeInstrumentation::new(8);
        let b = SchemeInstrumentation::new(8);
        a.record_probe(2);
        a.record_occupancy(3);
        b.record_probe(5);
        b.record_displacement(1);
        a.merge(&b);
        assert_eq!(a.probe.count(), 2);
        assert_eq!(a.occupancy.count(), 1);
        assert_eq!(a.displacement.count(), 1);
        assert_eq!(a.probe.max(), Some(5));
    }

    #[test]
    fn json_schema_is_three_histograms() {
        let i = SchemeInstrumentation::new(4);
        i.record_probe(1);
        let j = i.to_json();
        for key in ["probe", "occupancy", "displacement"] {
            assert!(j.get(key).and_then(|h| h.get("count")).is_some());
        }
        for key in ["hits", "skips", "false_positives", "key_reads"] {
            assert!(j.get("fingerprint").and_then(|f| f.get(key)).is_some());
        }
    }

    #[test]
    fn batch_counters_record_merge_and_reset() {
        let a = SchemeInstrumentation::new(4);
        let b = SchemeInstrumentation::new(4);
        assert_eq!(a.batch.fences_per_op(), None);
        a.batch.record(64, 66, 129); // K publishes: K+2 fences, 2K+1 flushes
        b.batch.record(1, 3, 3);
        a.merge(&b);
        assert_eq!(a.batch.batches.get(), 2);
        assert_eq!(a.batch.ops.get(), 65);
        assert_eq!(a.batch.fences.get(), 69);
        assert_eq!(a.batch.flushes.get(), 132);
        let per_op = a.batch.fences_per_op().unwrap();
        assert!(per_op < 3.0, "batching must beat 3 fences/op, got {per_op}");
        assert!(a.to_json().get("batch").and_then(|x| x.get("ops")).is_some());
        a.reset();
        assert_eq!(a.batch.batches.get(), 0);
    }

    #[test]
    fn fingerprint_counters_merge_and_reset() {
        let a = SchemeInstrumentation::new(4);
        let b = SchemeInstrumentation::new(4);
        a.fingerprint.hits.inc();
        a.fingerprint.key_reads.add(3);
        b.fingerprint.skips.add(5);
        b.fingerprint.false_positives.inc();
        a.merge(&b);
        assert_eq!(a.fingerprint.hits.get(), 1);
        assert_eq!(a.fingerprint.skips.get(), 5);
        assert_eq!(a.fingerprint.false_positives.get(), 1);
        assert_eq!(a.fingerprint.key_reads.get(), 3);
        a.reset();
        assert_eq!(a.fingerprint.skips.get(), 0);
    }
}
