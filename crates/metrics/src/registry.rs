//! The metrics registry: named sections serialized as one stable JSON
//! document.

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::instrument::{HeapCounters, SchemeInstrumentation};
use crate::json::Json;
use nvm_cachesim::CacheStats;
use nvm_pmem::PmemStats;
use std::collections::BTreeMap;

/// Serializes [`PmemStats`] with the registry's stable field names.
pub fn pmem_stats_json(s: &PmemStats) -> Json {
    let mut j = Json::obj();
    j.insert("reads", s.reads);
    j.insert("bytes_read", s.bytes_read);
    j.insert("writes", s.writes);
    j.insert("bytes_written", s.bytes_written);
    j.insert("atomic_writes", s.atomic_writes);
    j.insert("flushes", s.flushes);
    j.insert("fences", s.fences);
    j
}

/// Serializes [`CacheStats`] (totals, LLC misses, and per-level
/// hit/miss counts, innermost first).
pub fn cache_stats_json(s: &CacheStats) -> Json {
    let mut j = Json::obj();
    j.insert("reads", s.reads);
    j.insert("writes", s.writes);
    j.insert("invalidations", s.invalidations);
    j.insert("prefetches", s.prefetches);
    j.insert("llc_misses", s.llc_misses());
    let mut levels = Vec::new();
    for l in s.levels() {
        let mut lj = Json::obj();
        lj.insert("hits", l.hits);
        lj.insert("misses", l.misses);
        levels.push(lj);
    }
    j.insert("levels", levels);
    j
}

/// A collection of named metric sections that serializes to one stable
/// JSON object.
///
/// Section names sort in the output (objects are `BTreeMap`s), so two
/// runs that record the same metrics produce byte-identical documents —
/// which is what lets the harness diff metrics files and tests pin them.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    sections: BTreeMap<String, Json>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Inserts (or replaces) a section with an arbitrary JSON value.
    pub fn set(&mut self, name: &str, value: impl Into<Json>) -> &mut Self {
        self.sections.insert(name.to_string(), value.into());
        self
    }

    /// Records a plain counter value.
    pub fn set_counter(&mut self, name: &str, c: &Counter) -> &mut Self {
        self.set(name, c.get())
    }

    /// Records a histogram under `name` with the stable histogram schema.
    pub fn set_histogram(&mut self, name: &str, h: &Histogram) -> &mut Self {
        self.set(name, h.to_json())
    }

    /// Records pmem counters under `name`.
    pub fn set_pmem(&mut self, name: &str, s: &PmemStats) -> &mut Self {
        self.set(name, pmem_stats_json(s))
    }

    /// Records cache-hierarchy counters under `name`.
    pub fn set_cache(&mut self, name: &str, s: &CacheStats) -> &mut Self {
        self.set(name, cache_stats_json(s))
    }

    /// Records a scheme's probe/occupancy/displacement block under
    /// `name`.
    pub fn set_instrumentation(&mut self, name: &str, i: &SchemeInstrumentation) -> &mut Self {
        self.set(name, i.to_json())
    }

    /// Records a value heap's alloc/free/GC/wear block under `name`.
    pub fn set_heap(&mut self, name: &str, h: &HeapCounters) -> &mut Self {
        self.set(name, h.to_json())
    }

    /// Whether any sections have been recorded.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// The registry as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.sections.clone())
    }

    /// Pretty JSON with sorted keys — the on-disk metrics format.
    pub fn to_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        let c = Counter::new();
        c.add(7);
        r.set_counter("z_ops", &c);
        let h = Histogram::new(vec![1, 2]);
        h.record(1);
        r.set_histogram("a_probe", &h);
        r.set("scheme", "group");
        let s1 = r.to_string_pretty();
        let s2 = r.clone().to_string_pretty();
        assert_eq!(s1, s2, "serialization must be deterministic");
        let a = s1.find("a_probe").unwrap();
        let z = s1.find("z_ops").unwrap();
        assert!(a < z, "keys must sort: {s1}");
    }

    #[test]
    fn pmem_stats_schema() {
        let s = PmemStats {
            reads: 1,
            bytes_read: 8,
            writes: 2,
            bytes_written: 16,
            atomic_writes: 1,
            flushes: 3,
            fences: 4,
        };
        let j = pmem_stats_json(&s);
        assert_eq!(j.get("flushes").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("fences").and_then(Json::as_u64), Some(4));
        assert_eq!(j.get("bytes_written").and_then(Json::as_u64), Some(16));
    }
}
