//! Scoped per-operation tracing.
//!
//! [`OpTrace::begin`] snapshots a backend's [`PmemStats`], cache state and
//! simulated clock before a single table operation; [`OpTrace::end`]
//! returns the [`OpDelta`] attributable to that operation alone. This is
//! how tests pin the paper's per-op costs (e.g. one group-hash insert =
//! 3 flushes + 3 fences; one bitmap commit = 1 flush) and how the harness
//! builds per-op latency histograms.
//!
//! The trace is a begin/end pair rather than a `Drop` guard because the
//! traced operation needs `&mut P` while the guard would hold `&P`.

use crate::json::Json;
use crate::registry::{cache_stats_json, pmem_stats_json};
use nvm_cachesim::CacheStats;
use nvm_pmem::{Pmem, PmemStats};
use std::time::Instant;

/// A snapshot taken at the start of one operation.
#[derive(Debug, Clone)]
pub struct OpTrace {
    pmem: PmemStats,
    cache: Option<CacheStats>,
    sim_ns: Option<u64>,
    wall: Instant,
}

/// What one operation cost, as counter deltas.
#[derive(Debug, Clone)]
pub struct OpDelta {
    /// Persistence-operation deltas (flushes, fences, bytes written, …).
    pub pmem: PmemStats,
    /// Cache-hierarchy deltas, when the backend simulates caches.
    pub cache: Option<CacheStats>,
    /// Simulated nanoseconds elapsed, when the backend has a clock.
    pub sim_ns: Option<u64>,
    /// Wall-clock nanoseconds elapsed (always available; noisy).
    pub wall_ns: u64,
}

impl OpTrace {
    /// Snapshots `pm` before the operation.
    pub fn begin<P: Pmem + ?Sized>(pm: &P) -> OpTrace {
        OpTrace {
            pmem: pm.stats(),
            cache: pm.cache_stats(),
            sim_ns: pm.sim_time_ns(),
            wall: Instant::now(),
        }
    }

    /// Closes the trace, returning the deltas since [`OpTrace::begin`].
    ///
    /// Deltas are saturating: resetting the backend's stats mid-trace
    /// yields zeros rather than a panic.
    pub fn end<P: Pmem + ?Sized>(self, pm: &P) -> OpDelta {
        let wall_ns = self.wall.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let cache = match (pm.cache_stats(), &self.cache) {
            (Some(now), Some(then)) => Some(now.delta_since(then)),
            _ => None,
        };
        let sim_ns = match (pm.sim_time_ns(), self.sim_ns) {
            (Some(now), Some(then)) => Some(now.saturating_sub(then)),
            _ => None,
        };
        OpDelta {
            pmem: pm.stats().delta_since(&self.pmem),
            cache,
            sim_ns,
            wall_ns,
        }
    }
}

impl OpDelta {
    /// Last-level-cache misses caused by the operation (0 when the
    /// backend does not simulate caches).
    pub fn llc_misses(&self) -> u64 {
        self.cache.as_ref().map(CacheStats::llc_misses).unwrap_or(0)
    }

    /// The operation's latency: simulated time when available (it is
    /// deterministic), wall-clock otherwise.
    pub fn latency_ns(&self) -> u64 {
        self.sim_ns.unwrap_or(self.wall_ns)
    }

    /// Serializes as `{pmem, cache, sim_ns, wall_ns, latency_ns}` with
    /// the registry's stable stats schemas.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.insert("pmem", pmem_stats_json(&self.pmem));
        match &self.cache {
            Some(c) => j.insert("cache", cache_stats_json(c)),
            None => j.insert("cache", Json::Null),
        };
        match self.sim_ns {
            Some(ns) => j.insert("sim_ns", ns),
            None => j.insert("sim_ns", Json::Null),
        };
        j.insert("wall_ns", self.wall_ns);
        j.insert("latency_ns", self.latency_ns());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_pmem::{SimConfig, SimPmem};

    #[test]
    fn delta_isolates_one_window() {
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        pm.write(0, &[1u8; 64]);
        pm.persist(0, 64);

        let t = OpTrace::begin(&pm);
        pm.write(64, &[2u8; 8]);
        pm.persist(64, 8); // 1 line flushed + 1 fence
        let d = t.end(&pm);

        assert_eq!(d.pmem.flushes, 1);
        assert_eq!(d.pmem.fences, 1);
        assert_eq!(d.pmem.bytes_written, 8);
        assert!(d.sim_ns.is_some());
        assert!(d.latency_ns() > 0);
        assert!(d.cache.is_some());
    }

    #[test]
    fn reset_mid_trace_saturates_to_zero() {
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        pm.write(0, &[3u8; 16]);
        pm.persist(0, 16);
        let t = OpTrace::begin(&pm);
        pm.reset_stats();
        let d = t.end(&pm);
        assert_eq!(d.pmem, PmemStats::default());
    }
}
