//! A tiny self-contained JSON value with **stable, sorted key order**.
//!
//! The harness diffs metrics files across runs and pins them in tests, so
//! serialization must be deterministic: objects are `BTreeMap`s and the
//! writer walks them in key order. No external serializer is used.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects keep keys sorted (`BTreeMap`), which makes the
/// serialized form stable across runs and platforms.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers — the common case for counters.
    U64(u64),
    /// Signed integers, for deltas that can go negative.
    I64(i64),
    /// Finite floats; non-finite values serialize as `null`.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An empty object, ready for [`Json::insert`].
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// Inserts `key` into an object value.
    ///
    /// # Panics
    /// If `self` is not [`Json::Obj`].
    pub fn insert(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_string(), value.into());
            }
            other => panic!("Json::insert on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (accepting integer variants too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Pretty-printed JSON with two-space indentation and sorted keys.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` is Rust's shortest round-trip float form; it is
                    // valid JSON (integral floats print without ".0",
                    // which JSON also treats as a number).
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_key_order_and_escaping() {
        let mut j = Json::obj();
        j.insert("zeta", 1u64);
        j.insert("alpha", "line\nbreak");
        j.insert("mid", Json::Arr(vec![Json::U64(1), Json::Null]));
        let s = j.to_string_pretty();
        let alpha = s.find("alpha").unwrap();
        let mid = s.find("mid").unwrap();
        let zeta = s.find("zeta").unwrap();
        assert!(alpha < mid && mid < zeta, "keys must be sorted: {s}");
        assert!(s.contains("\\n"), "newline must be escaped: {s}");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).to_string_pretty().trim(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string_pretty().trim(), "null");
        assert_eq!(Json::F64(0.25).to_string_pretty().trim(), "0.25");
    }

    #[test]
    fn accessors() {
        let mut j = Json::obj();
        j.insert("n", 7u64);
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("n").and_then(Json::as_f64), Some(7.0));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::obj().to_string_pretty().trim(), "{}");
        assert_eq!(Json::Arr(vec![]).to_string_pretty().trim(), "[]");
    }
}
