//! Unified metrics and per-op tracing for the group-hashing workspace.
//!
//! The paper's claims are quantitative — flushes per insert (Table 2),
//! NVM writes under different schemes (Fig. 5), search cost versus load
//! factor (Fig. 7) — so every layer of this reproduction reports the same
//! small vocabulary of measurements, defined here:
//!
//! * [`Counter`] — cheap monotonic event counters;
//! * [`Histogram`] — fixed-bucket distributions with interpolated
//!   p50/p95/p99, used for probe lengths, group occupancy, and per-op
//!   simulated-time latency;
//! * [`OpTrace`]/[`OpDelta`] — a scoped begin/end pair that isolates the
//!   [`nvm_pmem::PmemStats`] and cache deltas of a *single* insert,
//!   lookup, or remove;
//! * [`SchemeInstrumentation`] — the probe/occupancy/displacement block
//!   every scheme (group hashing and all baselines) records identically;
//! * [`MetricsRegistry`] — named sections serialized as deterministic,
//!   sorted-key JSON ([`Json`]), the `metrics` block in every harness
//!   result file.
//!
//! Recording paths take `&self` (interior mutability) so immutable lookup
//! code can record, and everything is plain counters — no locks, no
//! allocation after construction. Schemes compile recording behind their
//! `instrument` feature; with the feature off the hooks are empty and the
//! compiler removes them.
//!
//! # Example
//!
//! ```
//! use nvm_metrics::{Histogram, MetricsRegistry, OpTrace};
//! use nvm_pmem::{Pmem, SimConfig, SimPmem};
//!
//! let mut pm = SimPmem::new(4096, SimConfig::fast_test());
//! let latency = Histogram::latency_ns();
//!
//! let t = OpTrace::begin(&pm);
//! pm.write(0, &[7u8; 8]);
//! pm.persist(0, 8);
//! let d = t.end(&pm);
//! assert_eq!(d.pmem.flushes, 1);
//! latency.record(d.latency_ns());
//!
//! let mut reg = MetricsRegistry::new();
//! reg.set_pmem("pmem", &pm.stats());
//! reg.set_histogram("latency_ns", &latency);
//! let json = reg.to_string_pretty();
//! assert!(json.contains("\"flushes\": 1"));
//! ```

mod concurrency;
mod counter;
mod histogram;
mod instrument;
mod json;
mod optrace;
mod registry;

pub use concurrency::{ConcurrencyCounters, ConcurrencySnapshot};
pub use counter::Counter;
pub use histogram::Histogram;
pub use instrument::{BatchCounters, FingerprintCounters, HeapCounters, SchemeInstrumentation};
pub use json::Json;
pub use optrace::{OpDelta, OpTrace};
pub use registry::{cache_stats_json, pmem_stats_json, MetricsRegistry};
