//! Property tests for the simulated persistence model.
//!
//! These pin down the substrate's contract, which every consistency
//! argument in the workspace rests on:
//!
//! * persisted (flushed + fenced) data survives every crash resolution;
//! * aligned 8-byte words never tear;
//! * the CPU view always reflects program order (crashes aside).

use nvm_pmem::{CrashResolution, Pmem, PmemRead, SimConfig, SimPmem};
use proptest::prelude::*;

const POOL: usize = 4096;

/// A tiny write/flush/fence program.
#[derive(Debug, Clone)]
enum Op {
    Write { off: usize, val: u64 },
    Persist { off: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..POOL / 8, any::<u64>()).prop_map(|(w, val)| Op::Write { off: w * 8, val }),
        (0usize..POOL / 8).prop_map(|w| Op::Persist { off: w * 8 }),
    ]
}

proptest! {
    /// Replaying a program against a plain byte-array oracle matches the
    /// CPU view exactly (no crash involved).
    #[test]
    fn cpu_view_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut p = SimPmem::new(POOL, SimConfig::fast_test());
        let mut oracle = vec![0u8; POOL];
        for op in &ops {
            match *op {
                Op::Write { off, val } => {
                    p.write_u64(off, val);
                    oracle[off..off + 8].copy_from_slice(&val.to_le_bytes());
                }
                Op::Persist { off } => p.persist(off, 8),
            }
        }
        prop_assert_eq!(p.raw(), &oracle[..]);
    }

    /// Every word whose last write was followed (eventually) by a persist
    /// of that word, with no later overwrite, survives every resolution.
    #[test]
    fn persisted_words_survive(
        ops in prop::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
    ) {
        let mut p = SimPmem::new(POOL, SimConfig::fast_test());
        // durable[w] = Some(v) iff word w's value v is provably durable.
        let mut last_write: Vec<u64> = vec![0; POOL / 8];
        let mut clean: Vec<bool> = vec![true; POOL / 8]; // true: media == last_write
        for op in &ops {
            match *op {
                Op::Write { off, val } => {
                    p.write_u64(off, val);
                    last_write[off / 8] = val;
                    clean[off / 8] = false;
                }
                Op::Persist { off } => {
                    p.persist(off, 8);
                    // The persist makes the whole line durable.
                    let line = off / 64;
                    clean[line * 8..line * 8 + 8].fill(true);
                }
            }
        }
        for how in [
            CrashResolution::DropUnflushed,
            CrashResolution::PersistAll,
            CrashResolution::Random(seed),
        ] {
            let mut q = p.clone();
            q.crash(how);
            for w in 0..POOL / 8 {
                if clean[w] {
                    prop_assert_eq!(
                        q.read_u64(w * 8),
                        last_write[w],
                        "word {} lost under {:?}", w, how
                    );
                }
            }
        }
    }

    /// After any crash, every word equals either its durable value or its
    /// last-written value — nothing else (8-byte atomicity).
    #[test]
    fn crash_state_is_word_wise_old_or_new(
        ops in prop::collection::vec(op_strategy(), 1..120),
        seed in any::<u64>(),
    ) {
        let mut p = SimPmem::new(POOL, SimConfig::fast_test());
        // Track the set of plausible values per word: last durable + last written.
        let mut history: Vec<Vec<u64>> = vec![vec![0]; POOL / 8];
        for op in &ops {
            match *op {
                Op::Write { off, val } => {
                    p.write_u64(off, val);
                    history[off / 8].push(val);
                }
                Op::Persist { off } => p.persist(off, 8),
            }
        }
        let mut q = p.clone();
        q.crash(CrashResolution::Random(seed));
        for (w, hist) in history.iter().enumerate() {
            let got = q.read_u64(w * 8);
            prop_assert!(
                hist.contains(&got),
                "word {} resolved to {:#x}, never written there", w, got
            );
        }
    }

    /// Crash resolution is deterministic in the seed.
    #[test]
    fn crash_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
    ) {
        let mut p = SimPmem::new(POOL, SimConfig::fast_test());
        for op in &ops {
            match *op {
                Op::Write { off, val } => p.write_u64(off, val),
                Op::Persist { off } => p.persist(off, 8),
            }
        }
        let mut a = p.clone();
        let mut b = p.clone();
        a.crash(CrashResolution::Random(seed));
        b.crash(CrashResolution::Random(seed));
        prop_assert_eq!(a.raw(), b.raw());
    }

    /// After a crash, nothing is dirty: a second crash (any resolution)
    /// changes nothing.
    #[test]
    fn crash_is_idempotent(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in any::<u64>(),
        seed2 in any::<u64>(),
    ) {
        let mut p = SimPmem::new(POOL, SimConfig::fast_test());
        for op in &ops {
            match *op {
                Op::Write { off, val } => p.write_u64(off, val),
                Op::Persist { off } => p.persist(off, 8),
            }
        }
        p.crash(CrashResolution::Random(seed));
        let image = p.raw().to_vec();
        p.crash(CrashResolution::Random(seed2));
        prop_assert_eq!(p.raw(), &image[..]);
        prop_assert_eq!(p.non_durable_words(), 0);
    }
}
