//! The deterministic NVM simulator.
//!
//! `SimPmem` keeps two views of every byte:
//!
//! * the **CPU view** (the shared buffer) — what loads observe, i.e. the
//!   newest store;
//! * the **media view** — what would survive a power failure right now.
//!
//! The media view is stored as a delta: for every cacheline holding at
//! least one non-durable word, a [`LineState`] records the line's durable
//! content (`base`) plus which 8-byte words have diverged. A `flush`
//! snapshots the line (clflush is asynchronous); only a subsequent `fence`
//! makes the snapshot durable. On [`SimPmem::crash`], non-durable words
//! resolve per [`CrashResolution`], the CPU caches are dropped, and the
//! pool's contents become exactly the resolved media — the only bytes a
//! recovery procedure may rely on.
//!
//! # Sharing model
//!
//! The byte buffer, operation counters, the cache/clock model, *and* the
//! persistence model (dirty-line delta, pending flushes, crash plan, wear)
//! live in an [`Arc`]-shared block so that [`SimPmemReader`] handles (from
//! [`Pmem::read_handle`]) and [`SimPmemWriter`] handles (from
//! [`Pmem::write_handle`]) can operate concurrently with the owning
//! `SimPmem`:
//!
//! * counters are `Relaxed` atomics;
//! * the persistence model sits behind its own mutex, taken by every
//!   mutation (owner or write handle). This serializes the *accounting* of
//!   concurrent writers — acceptable for a simulator, and exactly what
//!   makes `compare_exchange_u64` atomic here — while the pool bytes
//!   themselves are still copied through raw pointers;
//! * the cache hierarchy + simulated clock sit behind a second mutex,
//!   always acquired *after* the persistence mutex (lock order). Owners
//!   and write handles take it unconditionally (deterministic accounting);
//!   reader handles only `try_lock` and skip the model under contention
//!   (counted), because a shared cache model is not meaningful mid-race;
//! * buffer bytes are copied through raw pointers, never via references
//!   that could alias a concurrent writer. A read racing a write may be
//!   torn — callers validate (seqlock / occupancy-bit recheck) before
//!   trusting racy reads.
//!
//! Exactly one `SimPmem` owns each shared block (`clone` deep-copies);
//! write handles opt into shared mutation explicitly and shift the
//! disjointness obligation onto the caller's claim/CAS protocol.

use crate::clock::{LatencyModel, SimClock};
use crate::crash::{CrashPlan, CrashResolution, CrashSignal};
use crate::stats::AtomicPmemStats;
use crate::{Pmem, PmemRead, PmemStats, PmemWrite};
use nvm_cachesim::{AccessKind, CacheConfig, CacheHierarchy, CacheStats, LINE_BYTES};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Words per cacheline (64 B / 8 B).
const WORDS_PER_LINE: usize = LINE_BYTES / 8;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub cache: CacheConfig,
    pub latency: LatencyModel,
    /// Track per-line media write-back counts (NVM wear, §2.1 of the
    /// paper). One u32 per cacheline of pool.
    pub track_wear: bool,
}

impl SimConfig {
    /// The paper's testbed: Xeon E5-2620 cache hierarchy, 300 ns NVM write
    /// latency.
    pub fn paper_default() -> Self {
        SimConfig {
            cache: CacheConfig::xeon_e5_2620(),
            latency: LatencyModel::paper_default(),
            track_wear: true,
        }
    }

    /// Tiny caches for fast unit tests.
    pub fn fast_test() -> Self {
        SimConfig {
            cache: CacheConfig::tiny_for_tests(),
            latency: LatencyModel::paper_default(),
            track_wear: true,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-line non-durability record.
#[derive(Debug, Clone)]
struct LineState {
    /// Durable content of the line.
    base: Box<[u8; LINE_BYTES]>,
    /// Bit *w* set ⇒ word *w* of the CPU view may differ from `base` and is
    /// not yet durable.
    dirty_mask: u64,
    /// Content captured by a `flush` that no fence has retired yet.
    flushed: Option<Box<[u8; LINE_BYTES]>>,
}

/// Cache hierarchy + simulated clock: the accounting model that both the
/// owner and (opportunistically) reader handles charge accesses to.
#[derive(Clone)]
struct Model {
    cache: CacheHierarchy,
    clock: SimClock,
}

/// The persistence model: everything a mutation consults or updates.
/// Shared (behind a mutex) so write handles and the owner interleave with
/// one coherent view of what is durable.
#[derive(Clone)]
struct PersistState {
    lines: BTreeMap<u64, LineState>,
    /// Lines with a pending (un-fenced) flush; drained by `fence`.
    pending: Vec<u64>,
    /// Mutation-event counter for crash injection.
    events: u64,
    plan: Option<CrashPlan>,
    /// Per-line media write-back counts (empty when wear tracking is off).
    wear: Vec<u32>,
}

impl PersistState {
    /// Fires the crash plan if armed for this event, then counts it.
    #[inline]
    fn mutation_event(&mut self) {
        if let Some(plan) = self.plan {
            if self.events == plan.at_event {
                std::panic::panic_any(CrashSignal {
                    at_event: self.events,
                });
            }
        }
        self.events += 1;
    }

    /// Marks the words of `line` covering `[off, off+len)` dirty,
    /// snapshotting the durable base first if needed. Call *before*
    /// mutating the buffer.
    fn mark_dirty(&mut self, shared: &Shared, line: u64, off: usize, len: usize) {
        let entry = self.lines.entry(line).or_insert_with(|| LineState {
            base: snapshot_line(shared, line),
            dirty_mask: 0,
            flushed: None,
        });
        let line_start = line as usize * LINE_BYTES;
        let lo = off.max(line_start);
        let hi = (off + len).min(line_start + LINE_BYTES);
        let first_word = (lo - line_start) / 8;
        let last_word = (hi - line_start).div_ceil(8); // exclusive, rounded up
        for w in first_word..last_word.min(WORDS_PER_LINE) {
            entry.dirty_mask |= 1 << w;
        }
    }
}

/// State shared between the owning [`SimPmem`], its [`SimPmemReader`]s and
/// its [`SimPmemWriter`]s.
struct Shared {
    /// Heap buffer of `len` bytes; accessed only through raw-pointer
    /// copies so handles can run concurrently with mutators.
    ptr: *mut u8,
    len: usize,
    stats: AtomicPmemStats,
    /// Persistence model. Lock order: `persist` before `model`, always.
    persist: Mutex<PersistState>,
    model: Mutex<Model>,
    /// Reader-handle reads that skipped cache/clock accounting because the
    /// model mutex was held.
    contended_reads: AtomicU64,
}

// SAFETY: the buffer is only mutated under the persistence mutex (owner and
// write handles both route every store through it); reader handles perform
// raw-pointer copies that tolerate (and are validated against) torn data.
// All other shared state is atomic or mutex-protected.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Drop for Shared {
    fn drop(&mut self) {
        // SAFETY: `ptr` came from `Box::into_raw` of a `len`-byte slice in
        // `Shared::new` and is dropped exactly once.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.ptr, self.len,
            )));
        }
    }
}

#[inline]
fn line_range(off: usize, len: usize) -> std::ops::RangeInclusive<u64> {
    let first = (off / LINE_BYTES) as u64;
    let last = ((off + len.max(1) - 1) / LINE_BYTES) as u64;
    first..=last
}

fn snapshot_line(shared: &Shared, line: u64) -> Box<[u8; LINE_BYTES]> {
    let start = line as usize * LINE_BYTES;
    let mut b = Box::new([0u8; LINE_BYTES]);
    shared.copy_out(start, &mut b[..]);
    b
}

impl Shared {
    fn new(bytes: Box<[u8]>, model: Model, persist: PersistState) -> Arc<Self> {
        let len = bytes.len();
        let ptr = Box::into_raw(bytes) as *mut u8;
        Arc::new(Shared {
            ptr,
            len,
            stats: AtomicPmemStats::default(),
            persist: Mutex::new(persist),
            model: Mutex::new(model),
            contended_reads: AtomicU64::new(0),
        })
    }

    fn model(&self) -> MutexGuard<'_, Model> {
        // Poisoning carries no meaning here (the model holds statistics,
        // not invariants), so recover from a panicked holder.
        self.model.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn persist_state(&self) -> MutexGuard<'_, PersistState> {
        // Crash injection panics *while holding* this mutex by design (the
        // "power failure" interrupts the mutation mid-flight); recovery
        // code then reacquires it, so poison must not propagate.
        self.persist.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    fn check_bounds(&self, off: usize, len: usize) {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "pmem access out of bounds: off={off} len={len} pool={}",
            self.len
        );
    }

    /// Raw copy out of the buffer. Bounds must be pre-checked.
    #[inline]
    fn copy_out(&self, off: usize, buf: &mut [u8]) {
        // SAFETY: in-bounds (caller checked); raw copy never forms a
        // reference to the buffer, so it may race a writer (torn data is
        // the caller's protocol problem, not UB-by-aliasing).
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(off), buf.as_mut_ptr(), buf.len());
        }
    }

    /// Raw copy into the buffer. Mutator-only: reached with the
    /// persistence mutex held (owner path and write handles alike), so
    /// there is exactly one mutator at a time.
    #[inline]
    fn copy_in(&self, off: usize, data: &[u8]) {
        // SAFETY: in-bounds (caller checked); serialized by the
        // persistence mutex.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(off), data.len());
        }
    }

    #[inline]
    fn read_word(&self, off: usize) -> [u8; 8] {
        let mut w = [0u8; 8];
        self.copy_out(off, &mut w);
        w
    }

    /// Charges cacheline accesses for `[off, off+len)` to the model.
    /// `blocking` distinguishes the deterministic owner/writer path from
    /// the opportunistic reader-handle path.
    fn charge_access(
        &self,
        off: usize,
        len: usize,
        kind: AccessKind,
        latency: &LatencyModel,
        blocking: bool,
    ) {
        let mut guard = if blocking {
            self.model()
        } else {
            match self.model.try_lock() {
                Ok(g) => g,
                Err(_) => {
                    self.contended_reads.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        };
        let m = &mut *guard;
        for line in line_range(off, len) {
            let hit = m.cache.access(line as usize * LINE_BYTES, kind);
            m.clock.advance(latency.access_cost(hit));
        }
    }

    /// Installs the lines of `[off, off+len)` into the cache model but
    /// charges only the prefetch *issue* cost per line — the fill latency
    /// is assumed to overlap with the caller's other work, which is the
    /// whole value proposition of software prefetch. Same
    /// blocking/opportunistic split as [`Shared::charge_access`].
    fn charge_prefetch(&self, off: usize, len: usize, latency: &LatencyModel, blocking: bool) {
        let mut guard = if blocking {
            self.model()
        } else {
            match self.model.try_lock() {
                Ok(g) => g,
                Err(_) => {
                    self.contended_reads.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        };
        let m = &mut *guard;
        for line in line_range(off, len) {
            m.cache.access(line as usize * LINE_BYTES, AccessKind::Read);
            m.clock.advance(latency.prefetch_issue_ns);
        }
    }

    // ---- shared mutation core (owner + write handles) -----------------

    /// Plain store: mutation event, cache charge, dirty marking, copy-in.
    fn do_write(&self, off: usize, data: &[u8], latency: &LatencyModel) {
        self.check_bounds(off, data.len());
        let mut st = self.persist_state();
        st.mutation_event();
        self.charge_access(off, data.len(), AccessKind::Write, latency, true);
        for line in line_range(off, data.len()) {
            st.mark_dirty(self, line, off, data.len());
        }
        self.copy_in(off, data);
        self.stats.note_write(data.len() as u64);
    }

    fn do_atomic_write(&self, off: usize, v: u64, latency: &LatencyModel) {
        assert_eq!(off % 8, 0, "atomic_write_u64 requires 8-byte alignment");
        self.do_write(off, &v.to_le_bytes(), latency);
        self.stats.note_atomic_write();
    }

    /// Compare-and-swap of an aligned word. Atomic across every owner and
    /// write-handle mutation because all of them serialize on the
    /// persistence mutex. Every attempt is one mutation event and one
    /// atomic write in the stats; only a winning attempt dirties the word.
    fn do_cas(
        &self,
        off: usize,
        current: u64,
        new: u64,
        latency: &LatencyModel,
    ) -> Result<u64, u64> {
        assert_eq!(off % 8, 0, "compare_exchange_u64 requires 8-byte alignment");
        self.check_bounds(off, 8);
        let mut st = self.persist_state();
        st.mutation_event();
        self.charge_access(off, 8, AccessKind::Write, latency, true);
        self.stats.note_atomic_write();
        let observed = u64::from_le_bytes(self.read_word(off));
        if observed != current {
            return Err(observed);
        }
        for line in line_range(off, 8) {
            st.mark_dirty(self, line, off, 8);
        }
        self.copy_in(off, &new.to_le_bytes());
        self.stats.note_write(8);
        Ok(observed)
    }

    fn do_flush(&self, off: usize, len: usize, latency: &LatencyModel) {
        self.check_bounds(off, len.max(1));
        for line in line_range(off, len) {
            let mut st = self.persist_state();
            st.mutation_event();
            self.stats.note_flush_lines(1);
            let dirty = st.lines.contains_key(&line);
            if dirty {
                let snap = snapshot_line(self, line);
                let state = st.lines.get_mut(&line).expect("checked above");
                state.flushed = Some(snap);
                st.pending.push(line);
                if let Some(w) = st.wear.get_mut(line as usize) {
                    *w = w.saturating_add(1);
                }
            }
            let mut m = self.model();
            m.cache.invalidate(line as usize * LINE_BYTES);
            // Dirty write-back travels to the NVM media; a clean flush is
            // cheaper.
            m.clock.advance(if dirty {
                latency.nvm_writeback_ns
            } else {
                latency.clean_flush_ns
            });
        }
    }

    fn do_fence(&self, latency: &LatencyModel) {
        let mut st = self.persist_state();
        st.mutation_event();
        self.stats.note_fence();
        self.model().clock.advance(latency.fence_ns);
        for line in std::mem::take(&mut st.pending) {
            let Some(state) = st.lines.get_mut(&line) else {
                continue;
            };
            let Some(snapshot) = state.flushed.take() else {
                continue; // already retired by an earlier fence
            };
            // The snapshot becomes the durable base; words written after
            // the flush stay dirty relative to it.
            state.base = snapshot;
            let start = line as usize * LINE_BYTES;
            let mut mask = 0u64;
            for w in 0..WORDS_PER_LINE {
                if self.read_word(start + w * 8) != state.base[w * 8..w * 8 + 8] {
                    mask |= 1 << w;
                }
            }
            state.dirty_mask = mask;
            if mask == 0 {
                st.lines.remove(&line);
            }
        }
    }
}

/// Deterministic simulated persistent memory. See the module docs.
pub struct SimPmem {
    shared: Arc<Shared>,
    latency: LatencyModel,
}

/// Cloneable shared-read handle over a [`SimPmem`] pool
/// ([`Pmem::read_handle`]).
///
/// Reads observe the owner's latest stores (possibly torn mid-write — pair
/// with a validation protocol). Cache/clock accounting is best-effort: a
/// handle read that would block on the model mutex skips accounting and
/// bumps an internal contention counter instead.
pub struct SimPmemReader {
    shared: Arc<Shared>,
    latency: LatencyModel,
}

impl Clone for SimPmemReader {
    fn clone(&self) -> Self {
        SimPmemReader {
            shared: Arc::clone(&self.shared),
            latency: self.latency,
        }
    }
}

impl std::fmt::Debug for SimPmemReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPmemReader")
            .field("len", &self.shared.len)
            .finish_non_exhaustive()
    }
}

/// Cloneable shared-write handle over a [`SimPmem`] pool
/// ([`Pmem::write_handle`]).
///
/// Every mutation serializes on the pool's persistence mutex, which is
/// what makes [`PmemWrite::compare_exchange_u64`] genuinely atomic against
/// every other mutator (owner included) and keeps the durability model
/// coherent under concurrent writers. Callers must still keep plain
/// `write`s disjoint — the simulator serializes the bookkeeping, not the
/// caller's protocol.
pub struct SimPmemWriter {
    shared: Arc<Shared>,
    latency: LatencyModel,
}

impl Clone for SimPmemWriter {
    fn clone(&self) -> Self {
        SimPmemWriter {
            shared: Arc::clone(&self.shared),
            latency: self.latency,
        }
    }
}

impl std::fmt::Debug for SimPmemWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPmemWriter")
            .field("len", &self.shared.len)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for SimPmem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPmem")
            .field("len", &self.shared.len)
            .field("events", &self.events())
            .finish_non_exhaustive()
    }
}

impl Clone for SimPmem {
    /// Deep copy: the clone gets its own buffer, counters, cache model,
    /// clock and persistence model, fully independent of the original (and
    /// of the original's read/write handles).
    fn clone(&self) -> Self {
        let mut bytes = vec![0u8; self.shared.len].into_boxed_slice();
        self.shared.copy_out(0, &mut bytes);
        let model = self.shared.model().clone();
        let persist = self.shared.persist_state().clone();
        let shared = Shared::new(bytes, model, persist);
        shared.stats.set(self.shared.stats.snapshot());
        shared.contended_reads.store(
            self.shared.contended_reads.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        SimPmem {
            shared,
            latency: self.latency,
        }
    }
}

impl SimPmem {
    /// Creates a zeroed pool of `len` bytes.
    pub fn new(len: usize, config: SimConfig) -> Self {
        let wear = if config.track_wear {
            vec![0u32; len.div_ceil(LINE_BYTES)]
        } else {
            Vec::new()
        };
        let model = Model {
            cache: CacheHierarchy::new(config.cache),
            clock: SimClock::new(),
        };
        let persist = PersistState {
            lines: BTreeMap::new(),
            pending: Vec::new(),
            events: 0,
            plan: None,
            wear,
        };
        SimPmem {
            shared: Shared::new(vec![0u8; len].into_boxed_slice(), model, persist),
            latency: config.latency,
        }
    }

    /// Pool with the paper-default configuration.
    pub fn paper(len: usize) -> Self {
        Self::new(len, SimConfig::paper_default())
    }

    /// Arms (or disarms) crash injection.
    pub fn set_crash_plan(&mut self, plan: Option<CrashPlan>) {
        self.shared.persist_state().plan = plan;
    }

    /// Mutation events executed so far (owner and write handles alike).
    pub fn events(&self) -> u64 {
        self.shared.persist_state().events
    }

    /// Number of 8-byte words that are currently *not* durable.
    pub fn non_durable_words(&self) -> usize {
        self.shared
            .persist_state()
            .lines
            .values()
            .map(|l| l.dirty_mask.count_ones() as usize)
            .sum()
    }

    /// Reader-handle reads that skipped cache/clock accounting because the
    /// model was busy. Zero in single-threaded runs.
    pub fn contended_model_reads(&self) -> u64 {
        self.shared.contended_reads.load(Ordering::Relaxed)
    }

    /// Simulates a power failure: resolves every non-durable word per
    /// `how`, discards CPU caches, and replaces the pool contents with the
    /// surviving media image. The crash plan is disarmed.
    pub fn crash(&mut self, how: CrashResolution) {
        // First retire nothing: pending flushes are NOT durable. Resolve
        // word-by-word in deterministic (BTreeMap) order.
        let mut rng_state = match how {
            CrashResolution::Random(seed) => seed ^ 0x9E3779B97F4A7C15,
            _ => 0,
        };
        let mut alternate_next = match how {
            CrashResolution::Alternate { persist_first } => persist_first,
            _ => false,
        };
        let mut next_bit = move || -> bool {
            // xorshift64* — tiny, deterministic, and local to crash
            // resolution (pulling in a full RNG crate here would be a
            // dependency cycle with the dev-only rand).
            rng_state ^= rng_state >> 12;
            rng_state ^= rng_state << 25;
            rng_state ^= rng_state >> 27;
            (rng_state.wrapping_mul(0x2545F4914F6CDD1D) >> 63) & 1 == 1
        };

        let mut st = self.shared.persist_state();
        let lines = std::mem::take(&mut st.lines);
        for (line, state) in lines {
            let start = line as usize * LINE_BYTES;
            for w in 0..WORDS_PER_LINE {
                if state.dirty_mask & (1 << w) == 0 {
                    continue; // durable word: CPU view == media view
                }
                let keep_new = match how {
                    CrashResolution::Random(_) => next_bit(),
                    CrashResolution::DropUnflushed => false,
                    CrashResolution::PersistAll => true,
                    CrashResolution::Alternate { .. } => {
                        alternate_next = !alternate_next;
                        !alternate_next
                    }
                };
                if !keep_new {
                    self.shared
                        .copy_in(start + w * 8, &state.base[w * 8..w * 8 + 8]);
                }
            }
        }
        st.pending.clear();
        st.plan = None;
        drop(st);
        self.shared.model().cache.clear();
    }

    /// Evicts every line from the modeled CPU caches (and zeroes the
    /// cache hit/miss counters) without touching pool contents,
    /// persistence state, or the operation statistics. Experiments call
    /// this between timed phases so each arm is measured from a cold
    /// cache instead of inheriting whatever the previous arm left warm.
    /// (Flush/crash semantics are unaffected: the dirty-word delta in
    /// `lines` is what crash resolution consults, not cache residency.)
    pub fn cool_caches(&mut self) {
        self.shared.model().cache.clear();
    }

    /// Read-only view of the CPU-visible contents, bypassing the cache
    /// model and statistics. For tests and oracles only: the borrow of
    /// `self` keeps the (unique) owner out for its duration, but reads
    /// through live [`SimPmemReader`]/[`SimPmemWriter`] handles on other
    /// threads are not synchronized with it.
    pub fn raw(&self) -> &[u8] {
        // SAFETY: mutation through the owner requires `&mut SimPmem`,
        // which this shared borrow excludes; callers keep handle writers
        // quiescent by protocol.
        unsafe { std::slice::from_raw_parts(self.shared.ptr, self.shared.len) }
    }

    /// Installs `bytes` as the pool's fully-durable contents ("power-on"
    /// image load, not program activity — no cache/clock/stat effects).
    /// Panics if `bytes` exceeds the pool.
    pub(crate) fn install_image(&mut self, bytes: &[u8]) {
        assert!(bytes.len() <= self.shared.len, "image larger than pool");
        let mut st = self.shared.persist_state();
        self.shared.copy_in(0, bytes);
        st.lines.clear();
        st.pending.clear();
        drop(st);
        self.shared.model().cache.clear();
    }

    /// Per-cacheline media write-back counts (NVM wear). Empty when wear
    /// tracking is disabled. Index = line number (offset / 64). An owned
    /// snapshot: the live counters sit inside the shared persistence model.
    pub fn wear(&self) -> Vec<u32> {
        self.shared.persist_state().wear.clone()
    }

    /// Zeroes the wear counters (e.g. to exclude a build phase).
    pub fn reset_wear(&mut self) {
        self.shared.persist_state().wear.fill(0);
    }

    /// Summary of the wear distribution: `(total, max, mean-over-worn)`.
    /// Endurance is governed by the *hottest* line (without wear
    /// leveling), so `max / mean` measures how much a data structure
    /// concentrates its write-backs.
    pub fn wear_summary(&self) -> (u64, u32, f64) {
        let st = self.shared.persist_state();
        let total: u64 = st.wear.iter().map(|&w| w as u64).sum();
        let max = st.wear.iter().copied().max().unwrap_or(0);
        let worn = st.wear.iter().filter(|&&w| w > 0).count();
        let mean = if worn == 0 {
            0.0
        } else {
            total as f64 / worn as f64
        };
        (total, max, mean)
    }

    /// [`SimPmem::wear_summary`] restricted to the byte range
    /// `[off, off + len)` — per-range media wear, for attributing
    /// write-backs to one structure (a heap slab, a table level) inside a
    /// shared pool. Lines straddling the range boundary count in full.
    pub fn wear_range_summary(&self, off: usize, len: usize) -> (u64, u32, f64) {
        let st = self.shared.persist_state();
        let first = off / 64;
        let last = (off + len).div_ceil(64).min(st.wear.len());
        let range = &st.wear[first.min(st.wear.len())..last];
        let total: u64 = range.iter().map(|&w| w as u64).sum();
        let max = range.iter().copied().max().unwrap_or(0);
        let worn = range.iter().filter(|&&w| w > 0).count();
        let mean = if worn == 0 {
            0.0
        } else {
            total as f64 / worn as f64
        };
        (total, max, mean)
    }

    /// Latency model in effect.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }
}

impl PmemRead for SimPmem {
    fn read(&self, off: usize, buf: &mut [u8]) {
        self.shared.check_bounds(off, buf.len());
        // The owner blocks on the model mutex: single-threaded accounting
        // (cache hits, simulated time) stays exactly deterministic.
        self.shared
            .charge_access(off, buf.len(), AccessKind::Read, &self.latency, true);
        self.shared.copy_out(off, buf);
        self.shared.stats.note_read(buf.len() as u64);
    }

    fn len(&self) -> usize {
        self.shared.len
    }

    fn prefetch(&self, off: usize, len: usize) {
        self.shared.check_bounds(off, len.max(1));
        self.shared.charge_prefetch(off, len, &self.latency, true);
    }
}

impl PmemRead for SimPmemReader {
    fn read(&self, off: usize, buf: &mut [u8]) {
        self.shared.check_bounds(off, buf.len());
        // try_lock: never stall the lock-free read path on accounting.
        self.shared
            .charge_access(off, buf.len(), AccessKind::Read, &self.latency, false);
        self.shared.copy_out(off, buf);
        self.shared.stats.note_read(buf.len() as u64);
    }

    fn len(&self) -> usize {
        self.shared.len
    }

    fn prefetch(&self, off: usize, len: usize) {
        self.shared.check_bounds(off, len.max(1));
        // try_lock, like reads: never stall the lock-free path on a hint.
        self.shared.charge_prefetch(off, len, &self.latency, false);
    }
}

impl PmemRead for SimPmemWriter {
    fn read(&self, off: usize, buf: &mut [u8]) {
        self.shared.check_bounds(off, buf.len());
        // Writers block like the owner: their accounting stays
        // deterministic in single-writer runs (budget pinning).
        self.shared
            .charge_access(off, buf.len(), AccessKind::Read, &self.latency, true);
        self.shared.copy_out(off, buf);
        self.shared.stats.note_read(buf.len() as u64);
    }

    fn len(&self) -> usize {
        self.shared.len
    }

    fn prefetch(&self, off: usize, len: usize) {
        self.shared.check_bounds(off, len.max(1));
        self.shared.charge_prefetch(off, len, &self.latency, true);
    }
}

impl PmemWrite for SimPmemWriter {
    fn write(&self, off: usize, data: &[u8]) {
        self.shared.do_write(off, data, &self.latency);
    }

    fn atomic_write_u64(&self, off: usize, v: u64) {
        self.shared.do_atomic_write(off, v, &self.latency);
    }

    fn compare_exchange_u64(&self, off: usize, current: u64, new: u64) -> Result<u64, u64> {
        self.shared.do_cas(off, current, new, &self.latency)
    }

    fn flush(&self, off: usize, len: usize) {
        self.shared.do_flush(off, len, &self.latency);
    }

    fn fence(&self) {
        self.shared.do_fence(&self.latency);
    }
}

impl Pmem for SimPmem {
    type ReadHandle = SimPmemReader;
    type WriteHandle = SimPmemWriter;

    fn read_handle(&self) -> SimPmemReader {
        SimPmemReader {
            shared: Arc::clone(&self.shared),
            latency: self.latency,
        }
    }

    fn write_handle(&mut self) -> SimPmemWriter {
        SimPmemWriter {
            shared: Arc::clone(&self.shared),
            latency: self.latency,
        }
    }

    fn write(&mut self, off: usize, data: &[u8]) {
        self.shared.do_write(off, data, &self.latency);
    }

    fn atomic_write_u64(&mut self, off: usize, v: u64) {
        self.shared.do_atomic_write(off, v, &self.latency);
    }

    fn flush(&mut self, off: usize, len: usize) {
        self.shared.do_flush(off, len, &self.latency);
    }

    fn fence(&mut self) {
        self.shared.do_fence(&self.latency);
    }

    fn stats(&self) -> PmemStats {
        self.shared.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.shared.stats.reset();
        let mut m = self.shared.model();
        m.clock.reset();
        m.cache.reset_stats();
    }

    fn sim_time_ns(&self) -> Option<u64> {
        Some(self.shared.model().clock.now_ns())
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.shared.model().cache.stats().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::run_with_crash;

    fn pool() -> SimPmem {
        SimPmem::new(4096, SimConfig::fast_test())
    }

    #[test]
    fn write_read_roundtrip() {
        let mut p = pool();
        p.write(100, b"hello nvm");
        let mut buf = [0u8; 9];
        p.read(100, &mut buf);
        assert_eq!(&buf, b"hello nvm");
    }

    #[test]
    fn unflushed_write_may_be_lost() {
        let mut p = pool();
        p.write_u64(0, 0x1111);
        p.crash(CrashResolution::DropUnflushed);
        assert_eq!(p.read_u64(0), 0);
    }

    #[test]
    fn flushed_and_fenced_write_survives_any_resolution() {
        for how in [
            CrashResolution::DropUnflushed,
            CrashResolution::PersistAll,
            CrashResolution::Random(7),
        ] {
            let mut p = pool();
            p.write_u64(0, 0x2222);
            p.persist(0, 8);
            p.crash(how);
            assert_eq!(p.read_u64(0), 0x2222, "resolution {how:?}");
        }
    }

    #[test]
    fn flush_without_fence_is_not_durable() {
        let mut p = pool();
        p.write_u64(0, 0x3333);
        p.flush(0, 8);
        // no fence
        p.crash(CrashResolution::DropUnflushed);
        assert_eq!(p.read_u64(0), 0);
    }

    #[test]
    fn aligned_word_never_tears() {
        // Write a 16-byte value; words may persist independently, but each
        // 8-byte half must be entirely old or entirely new.
        for seed in 0..32 {
            let mut p = pool();
            p.write(0, &[0xAAu8; 16]);
            p.persist(0, 16);
            p.write(0, &[0xBBu8; 16]);
            p.crash(CrashResolution::Random(seed));
            let mut buf = [0u8; 16];
            p.read(0, &mut buf);
            for half in buf.chunks(8) {
                assert!(
                    half.iter().all(|&b| b == 0xAA) || half.iter().all(|&b| b == 0xBB),
                    "torn word: {half:?} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn random_resolution_hits_both_outcomes() {
        let mut lost = 0;
        let mut kept = 0;
        for seed in 0..64 {
            let mut p = pool();
            p.write_u64(0, 0x4444);
            p.crash(CrashResolution::Random(seed));
            if p.read_u64(0) == 0x4444 {
                kept += 1;
            } else {
                lost += 1;
            }
        }
        assert!(lost > 5 && kept > 5, "lost={lost} kept={kept}");
    }

    #[test]
    fn persist_all_keeps_unflushed() {
        let mut p = pool();
        p.write_u64(8, 0x5555);
        p.crash(CrashResolution::PersistAll);
        assert_eq!(p.read_u64(8), 0x5555);
    }

    #[test]
    fn write_after_flush_before_fence_stays_dirty() {
        let mut p = pool();
        p.write_u64(0, 1);
        p.flush(0, 8);
        p.write_u64(0, 2); // after flush, before fence
        p.fence(); // retires the flush: durable value is 1
        p.crash(CrashResolution::DropUnflushed);
        assert_eq!(p.read_u64(0), 1);
    }

    #[test]
    fn crash_plan_fires_at_event() {
        let mut p = pool();
        p.write_u64(0, 1); // event 0
        p.set_crash_plan(Some(CrashPlan { at_event: 2 }));
        let r = run_with_crash(|| {
            p.write_u64(8, 2); // event 1
            p.write_u64(16, 3); // event 2 -> crash before applying
            unreachable!()
        });
        assert_eq!(r.unwrap_err().at_event, 2);
        assert_eq!(p.read_u64(8), 2); // event 1 applied (volatile view)
        assert_eq!(p.read_u64(16), 0); // event 2 never applied
    }

    #[test]
    fn stats_count_ops() {
        let mut p = pool();
        p.write(0, &[1; 16]);
        p.persist(0, 16);
        p.atomic_write_u64(64, 9);
        let mut b = [0u8; 4];
        p.read(0, &mut b);
        let s = p.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.atomic_writes, 1);
        assert_eq!(s.flushes, 1); // 16 bytes in one line
        assert_eq!(s.fences, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 24);
    }

    #[test]
    fn flush_spanning_lines_counts_each() {
        let mut p = pool();
        p.write(60, &[7u8; 10]); // straddles lines 0 and 1
        p.persist(60, 10);
        assert_eq!(p.stats().flushes, 2);
    }

    #[test]
    fn sim_time_advances_monotonically() {
        let mut p = pool();
        let t0 = p.sim_time_ns().unwrap();
        p.write_u64(0, 1);
        let t1 = p.sim_time_ns().unwrap();
        p.persist(0, 8);
        let t2 = p.sim_time_ns().unwrap();
        assert!(t1 >= t0); // write cost may truncate to same ns
        assert!(t2 > t1, "persist must cost time");
    }

    #[test]
    fn dirty_flush_costs_more_than_clean() {
        let mut a = pool();
        a.write_u64(0, 1);
        a.reset_stats();
        a.flush(0, 8); // dirty line
        let dirty_cost = a.sim_time_ns().unwrap();

        let mut b = pool();
        b.reset_stats();
        b.flush(0, 8); // clean line
        let clean_cost = b.sim_time_ns().unwrap();
        assert!(dirty_cost > clean_cost);
    }

    #[test]
    fn cache_stats_exposed() {
        let mut p = pool();
        p.write_u64(0, 1);
        let mut b = [0u8; 8];
        p.read(0, &mut b);
        let cs = p.cache_stats().unwrap();
        assert_eq!(cs.reads, 1);
        assert_eq!(cs.writes, 1);
    }

    #[test]
    fn non_durable_words_tracks_state() {
        let mut p = pool();
        assert_eq!(p.non_durable_words(), 0);
        p.write(0, &[1u8; 32]);
        assert_eq!(p.non_durable_words(), 4);
        p.persist(0, 32);
        assert_eq!(p.non_durable_words(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_write_panics() {
        let mut p = pool();
        p.write_u64(4095, 1);
    }

    #[test]
    #[should_panic(expected = "8-byte alignment")]
    fn misaligned_atomic_panics() {
        let mut p = pool();
        p.atomic_write_u64(4, 1);
    }

    #[test]
    fn wear_counts_dirty_writebacks() {
        let mut p = pool();
        assert_eq!(p.wear_summary(), (0, 0, 0.0));
        p.write_u64(0, 1);
        p.persist(0, 8); // 1 write-back of line 0
        p.write_u64(8, 2);
        p.persist(8, 8); // another write-back of line 0
        p.write_u64(128, 3);
        p.persist(128, 8); // line 2
        assert_eq!(p.wear()[0], 2);
        assert_eq!(p.wear()[1], 0);
        assert_eq!(p.wear()[2], 1);
        let (total, max, mean) = p.wear_summary();
        assert_eq!(total, 3);
        assert_eq!(max, 2);
        assert!((mean - 1.5).abs() < 1e-9);
        // Clean flushes don't wear.
        p.flush(0, 8);
        p.fence();
        assert_eq!(p.wear()[0], 2);
        p.reset_wear();
        assert_eq!(p.wear_summary().0, 0);
    }

    #[test]
    fn prefetch_makes_next_read_a_cache_hit() {
        // Cold read vs prefetch-then-read of the same never-touched line:
        // the prefetched pool pays issue cost + L1 hit, the cold pool pays
        // a full memory miss — so the prefetched total must be cheaper.
        let mut cold = pool();
        cold.reset_stats();
        let mut b = [0u8; 8];
        cold.read(512, &mut b);
        let cold_ns = cold.sim_time_ns().unwrap();

        let mut warm = pool();
        warm.reset_stats();
        warm.prefetch(512, 8);
        warm.read(512, &mut b);
        let warm_ns = warm.sim_time_ns().unwrap();
        assert!(
            warm_ns < cold_ns,
            "prefetch+read ({warm_ns} ns) must beat cold read ({cold_ns} ns)"
        );
    }

    #[test]
    fn prefetch_costs_no_persistence_events_and_no_reads() {
        let mut p = pool();
        p.reset_stats();
        p.prefetch(0, 256);
        let s = p.stats();
        assert_eq!((s.reads, s.writes, s.flushes, s.fences, s.atomic_writes), (0, 0, 0, 0, 0));
        // It does cost (a little) simulated time, and does touch the cache.
        assert!(p.sim_time_ns().unwrap() > 0);
        assert!(p.cache_stats().unwrap().reads >= 4, "4 lines installed");
        // And it is not a mutation event: crash plans never fire on it.
        assert_eq!(p.events(), 0);
    }

    #[test]
    fn reader_handle_prefetch_is_usable_and_free_of_stats() {
        let mut p = pool();
        let h = p.read_handle();
        h.prefetch(64, 64);
        p.write_u64(64, 42);
        assert_eq!(h.read_u64(64), 42);
        assert_eq!(p.stats().reads, 1, "prefetch itself is not a read");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_prefetch_panics() {
        let p = pool();
        p.prefetch(4096, 8);
    }

    #[test]
    fn clone_is_independent() {
        let mut p = pool();
        p.write_u64(0, 1);
        let mut q = p.clone();
        q.write_u64(0, 2);
        assert_eq!(p.read_u64(0), 1);
        assert_eq!(q.read_u64(0), 2);
    }

    #[test]
    fn reader_handle_tracks_writer_and_counts_reads() {
        let mut p = pool();
        let h = p.read_handle();
        p.write_u64(32, 0xFEED);
        assert_eq!(h.read_u64(32), 0xFEED);
        p.write_u64(32, 0xF00D);
        assert_eq!(h.read_u64(32), 0xF00D);
        let s = p.stats();
        assert_eq!(s.reads, 2, "handle reads land in the shared counters");
    }

    #[test]
    fn reader_handles_are_concurrent() {
        let mut p = SimPmem::new(1 << 16, SimConfig::fast_test());
        for i in 0..64u64 {
            p.write_u64((i * 8) as usize, i);
        }
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = p.read_handle();
                std::thread::spawn(move || {
                    for round in 0..100 {
                        for i in 0..64u64 {
                            assert_eq!(h.read_u64((i * 8) as usize), i, "round {round}");
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.stats().reads, 4 * 100 * 64);
    }

    // ---- write-handle semantics ---------------------------------------

    #[test]
    fn write_handle_mutations_share_durability_model_with_owner() {
        let mut p = pool();
        let w = p.write_handle();
        w.write_u64(0, 0xAAAA);
        // Not yet flushed: the owner's crash drops it.
        p.crash(CrashResolution::DropUnflushed);
        assert_eq!(p.read_u64(0), 0);

        let w = p.write_handle();
        w.write_u64(0, 0xBBBB);
        w.persist(0, 8);
        p.crash(CrashResolution::DropUnflushed);
        assert_eq!(p.read_u64(0), 0xBBBB, "handle persist is durable");
    }

    #[test]
    fn cas_swaps_only_on_match_and_counts_attempts() {
        let mut p = pool();
        p.write_u64(64, 5);
        p.reset_stats();
        let w = p.write_handle();
        assert_eq!(w.compare_exchange_u64(64, 5, 9), Ok(5));
        assert_eq!(p.read_u64(64), 9);
        assert_eq!(w.compare_exchange_u64(64, 5, 11), Err(9));
        assert_eq!(p.read_u64(64), 9, "failed CAS must not store");
        let s = p.stats();
        assert_eq!(s.atomic_writes, 2, "every CAS attempt counts");
        assert_eq!(s.bytes_written, 8, "only the winning CAS stores");
    }

    #[test]
    #[should_panic(expected = "8-byte alignment")]
    fn misaligned_cas_panics() {
        let mut p = pool();
        let w = p.write_handle();
        let _ = w.compare_exchange_u64(4, 0, 1);
    }

    #[test]
    fn cas_is_atomic_across_concurrent_handles() {
        let mut p = SimPmem::new(4096, SimConfig::fast_test());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let w = p.write_handle();
                std::thread::spawn(move || {
                    // Lock-free counter: each thread adds 1000 via CAS loops.
                    for _ in 0..1000 {
                        loop {
                            let cur = w.read_u64(0);
                            if w.compare_exchange_u64(0, cur, cur + 1).is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.read_u64(0), 4000, "no lost increments");
    }

    #[test]
    fn crash_plan_fires_on_write_handle_events_too() {
        let mut p = pool();
        p.set_crash_plan(Some(CrashPlan { at_event: 1 }));
        let w = p.write_handle();
        let r = run_with_crash(|| {
            w.write_u64(0, 1); // event 0
            w.write_u64(8, 2); // event 1 -> crash before applying
            unreachable!()
        });
        assert_eq!(r.unwrap_err().at_event, 1);
        assert_eq!(p.read_u64(0), 1);
        assert_eq!(p.read_u64(8), 0);
    }
}
