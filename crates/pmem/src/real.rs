//! Wall-clock persistent-memory emulation with real intrinsics.
//!
//! Mirrors the paper's testbed methodology (§4.1): a DRAM region is treated
//! as NVM; writes are made durable with real `clflush` + `mfence`, and an
//! extra configurable delay (300 ns by default) is spun after each flushed
//! cacheline to emulate NVM's slower writes, exactly as PMFS-style
//! emulators do. Reads run at DRAM speed, as in the paper ("NVM has similar
//! read latency to DRAM").
//!
//! On x86_64 the flush/fence primitives are the genuine
//! `core::arch::x86_64` intrinsics; elsewhere they degrade to compiler
//! fences plus the emulation delay, preserving timing behaviour (but not
//! actual durability, which no DRAM-backed emulation provides anyway).
//!
//! The pool and its counters live in an [`Arc`]-shared allocation so
//! [`RealPmemReader`] handles can read from other threads while the unique
//! owning `RealPmem` writes (readers must validate against tearing, e.g.
//! with a seqlock).

use crate::stats::AtomicPmemStats;
use crate::{Pmem, PmemRead, PmemStats, PmemWrite};
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::Arc;
use std::time::Instant;

use crate::region::CACHELINE;

/// The shared allocation: pool bytes + counters.
#[derive(Debug)]
struct RealShared {
    ptr: *mut u8,
    len: usize,
    layout: Layout,
    stats: AtomicPmemStats,
}

// SAFETY: bytes are only mutated through the unique owning `RealPmem`
// (`&mut self`); reader handles do raw-pointer copies whose races are the
// caller's validation problem. Counters are atomic.
unsafe impl Send for RealShared {}
unsafe impl Sync for RealShared {}

impl Drop for RealShared {
    fn drop(&mut self) {
        // SAFETY: allocated with this exact layout in the constructor.
        unsafe { dealloc(self.ptr, self.layout) }
    }
}

impl RealShared {
    #[inline]
    fn check_bounds(&self, off: usize, len: usize) {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len),
            "pmem access out of bounds: off={off} len={len} pool={}",
            self.len
        );
    }

    #[inline]
    fn read_into(&self, off: usize, buf: &mut [u8]) {
        self.check_bounds(off, buf.len());
        // SAFETY: bounds checked; regions cannot overlap (buf is a distinct
        // allocation). Raw copy, no reference formed over the pool.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(off), buf.as_mut_ptr(), buf.len());
        }
        self.stats.note_read(buf.len() as u64);
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn prefetch_lines(&self, off: usize, len: usize) {
        self.check_bounds(off, len.max(1));
        let first = off / CACHELINE;
        let last = (off + len.max(1) - 1) / CACHELINE;
        for line in first..=last {
            // SAFETY: in-bounds (checked above); prefetch is a pure hint
            // with no alignment or aliasing requirements.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    self.ptr.add(line * CACHELINE) as *const i8,
                );
            }
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    fn prefetch_lines(&self, off: usize, len: usize) {
        self.check_bounds(off, len.max(1));
    }

    // ---- shared mutation core (owner + write handles) -----------------
    //
    // Plain writes require caller-guaranteed disjointness (a claim table
    // or latch keeps concurrent writers on different bytes); the CAS is
    // the one supported same-word contention point.

    #[inline]
    fn write_bytes(&self, off: usize, data: &[u8]) {
        self.check_bounds(off, data.len());
        // SAFETY: bounds checked; source is a distinct allocation. Raw
        // copy, no reference formed over the pool, so concurrent readers
        // merely risk tearing (their validation problem, not UB).
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr.add(off), data.len());
        }
        self.stats.note_write(data.len() as u64);
    }

    #[inline]
    fn atomic_store_u64(&self, off: usize, v: u64) {
        assert_eq!(off % 8, 0, "atomic_write_u64 requires 8-byte alignment");
        self.check_bounds(off, 8);
        // SAFETY: aligned (asserted), in-bounds, and the pool outlives the
        // reference. A relaxed atomic store compiles to a plain MOV on
        // x86_64 — the hardware guarantees 8-byte aligned stores are not
        // torn, which is the paper's failure-atomicity assumption.
        unsafe {
            let p = self.ptr.add(off) as *mut std::sync::atomic::AtomicU64;
            (*p).store(v, std::sync::atomic::Ordering::Relaxed);
        }
        self.stats.note_write(8);
        self.stats.note_atomic_write();
    }

    #[inline]
    fn cas_u64(&self, off: usize, current: u64, new: u64) -> Result<u64, u64> {
        assert_eq!(off % 8, 0, "compare_exchange_u64 requires 8-byte alignment");
        self.check_bounds(off, 8);
        self.stats.note_atomic_write();
        // SAFETY: aligned (asserted), in-bounds (checked), and the pool is
        // cacheline-aligned so every 8-aligned offset is a valid AtomicU64
        // location; the pool outlives the reference. AcqRel gives the
        // claim-publish ordering the lock-free insert protocol needs.
        let r = unsafe {
            let p = self.ptr.add(off) as *mut std::sync::atomic::AtomicU64;
            (*p).compare_exchange(
                current,
                new,
                std::sync::atomic::Ordering::AcqRel,
                std::sync::atomic::Ordering::Acquire,
            )
        };
        if r.is_ok() {
            self.stats.note_write(8);
        }
        r
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn clflush_line(&self, off: usize) {
        // SAFETY: `off` is bounds-checked by callers; the pointer is valid
        // for the pool's lifetime. clflush has no alignment requirement.
        unsafe {
            core::arch::x86_64::_mm_clflush(self.ptr.add(off));
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    fn clflush_line(&self, _off: usize) {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }

    fn flush_lines(&self, off: usize, len: usize, extra_write_ns: u64) {
        self.check_bounds(off, len.max(1));
        let first = off / CACHELINE;
        let last = (off + len.max(1) - 1) / CACHELINE;
        for line in first..=last {
            self.clflush_line(line * CACHELINE);
            self.stats.note_flush_lines(1);
            // Emulate the slow NVM write path, as the paper does after
            // each clflush.
            spin_ns(extra_write_ns);
        }
    }

    fn fence_once(&self) {
        mfence();
        self.stats.note_fence();
    }
}

/// Busy-waits for approximately `ns` nanoseconds. `Instant`-based so it is
/// robust to frequency scaling; the granularity (~tens of ns) is the same
/// technique used by the NVM-emulation literature.
#[inline]
fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn mfence() {
    // SAFETY: mfence has no preconditions.
    unsafe {
        core::arch::x86_64::_mm_mfence();
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn mfence() {
    std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
}

/// DRAM-backed pmem emulation with real `clflush`/`mfence` and a spin-wait
/// emulating NVM write latency.
#[derive(Debug)]
pub struct RealPmem {
    shared: Arc<RealShared>,
    /// Extra latency charged per flushed cacheline, emulating the NVM
    /// write path (0 disables the spin).
    extra_write_ns: u64,
}

/// Cloneable shared-read handle over a [`RealPmem`] pool
/// ([`Pmem::read_handle`]). Reads run at DRAM speed and may race the
/// owner's writes (pair with a validation protocol).
#[derive(Debug, Clone)]
pub struct RealPmemReader {
    shared: Arc<RealShared>,
}

/// Cloneable shared-write handle over a [`RealPmem`] pool
/// ([`Pmem::write_handle`]).
///
/// Mutations go straight to the shared bytes with no internal
/// serialization: concurrent writers must keep plain `write`s on disjoint
/// bytes (claim table / latch), and contend only through
/// [`PmemWrite::compare_exchange_u64`] — a genuine hardware `lock cmpxchg`
/// on the pool word.
#[derive(Debug, Clone)]
pub struct RealPmemWriter {
    shared: Arc<RealShared>,
    extra_write_ns: u64,
}

impl RealPmem {
    /// Default emulated extra NVM write latency (the paper's 300 ns).
    pub const DEFAULT_EXTRA_WRITE_NS: u64 = 300;

    /// Allocates a zeroed, cacheline-aligned pool of `len` bytes with the
    /// paper's 300 ns emulated write latency.
    pub fn new(len: usize) -> Self {
        Self::with_write_latency(len, Self::DEFAULT_EXTRA_WRITE_NS)
    }

    /// Allocates with a custom per-flush extra latency (0 = raw DRAM).
    pub fn with_write_latency(len: usize, extra_write_ns: u64) -> Self {
        assert!(len > 0, "empty pool");
        let layout = Layout::from_size_align(len, CACHELINE).expect("bad layout");
        // SAFETY: layout has non-zero size; allocation checked below.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "pmem pool allocation failed ({len} bytes)");
        RealPmem {
            shared: Arc::new(RealShared {
                ptr,
                len,
                layout,
                stats: AtomicPmemStats::default(),
            }),
            extra_write_ns,
        }
    }

    /// Raw read-only view (tests/oracles; bypasses statistics). The borrow
    /// of `self` keeps the unique writer out for its duration.
    pub fn raw(&self) -> &[u8] {
        // SAFETY: ptr/len describe our live allocation; mutation requires
        // `&mut RealPmem`, which this shared borrow excludes.
        unsafe { std::slice::from_raw_parts(self.shared.ptr, self.shared.len) }
    }
}

impl PmemRead for RealPmem {
    #[inline]
    fn read(&self, off: usize, buf: &mut [u8]) {
        self.shared.read_into(off, buf);
    }

    fn len(&self) -> usize {
        self.shared.len
    }

    #[inline]
    fn prefetch(&self, off: usize, len: usize) {
        self.shared.prefetch_lines(off, len);
    }
}

impl PmemRead for RealPmemReader {
    #[inline]
    fn read(&self, off: usize, buf: &mut [u8]) {
        self.shared.read_into(off, buf);
    }

    fn len(&self) -> usize {
        self.shared.len
    }

    #[inline]
    fn prefetch(&self, off: usize, len: usize) {
        self.shared.prefetch_lines(off, len);
    }
}

impl PmemRead for RealPmemWriter {
    #[inline]
    fn read(&self, off: usize, buf: &mut [u8]) {
        self.shared.read_into(off, buf);
    }

    fn len(&self) -> usize {
        self.shared.len
    }

    #[inline]
    fn prefetch(&self, off: usize, len: usize) {
        self.shared.prefetch_lines(off, len);
    }
}

impl PmemWrite for RealPmemWriter {
    #[inline]
    fn write(&self, off: usize, data: &[u8]) {
        self.shared.write_bytes(off, data);
    }

    #[inline]
    fn atomic_write_u64(&self, off: usize, v: u64) {
        self.shared.atomic_store_u64(off, v);
    }

    #[inline]
    fn compare_exchange_u64(&self, off: usize, current: u64, new: u64) -> Result<u64, u64> {
        self.shared.cas_u64(off, current, new)
    }

    fn flush(&self, off: usize, len: usize) {
        self.shared.flush_lines(off, len, self.extra_write_ns);
    }

    fn fence(&self) {
        self.shared.fence_once();
    }
}

impl Pmem for RealPmem {
    type ReadHandle = RealPmemReader;
    type WriteHandle = RealPmemWriter;

    fn read_handle(&self) -> RealPmemReader {
        RealPmemReader {
            shared: Arc::clone(&self.shared),
        }
    }

    fn write_handle(&mut self) -> RealPmemWriter {
        RealPmemWriter {
            shared: Arc::clone(&self.shared),
            extra_write_ns: self.extra_write_ns,
        }
    }

    #[inline]
    fn write(&mut self, off: usize, data: &[u8]) {
        self.shared.write_bytes(off, data);
    }

    #[inline]
    fn atomic_write_u64(&mut self, off: usize, v: u64) {
        self.shared.atomic_store_u64(off, v);
    }

    fn flush(&mut self, off: usize, len: usize) {
        self.shared.flush_lines(off, len, self.extra_write_ns);
    }

    fn fence(&mut self) {
        self.shared.fence_once();
    }

    fn stats(&self) -> PmemStats {
        self.shared.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.shared.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        p.write(10, b"persist me");
        let mut buf = [0u8; 10];
        p.read(10, &mut buf);
        assert_eq!(&buf, b"persist me");
    }

    #[test]
    fn zero_initialized() {
        let p = RealPmem::with_write_latency(1 << 16, 0);
        let mut buf = [1u8; 64];
        p.read(1 << 15, &mut buf);
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn atomic_write_visible() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        p.atomic_write_u64(64, 0xABCD);
        assert_eq!(p.read_u64(64), 0xABCD);
    }

    #[test]
    fn flush_and_fence_count() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        p.write(0, &[9u8; 100]);
        p.persist(0, 100); // 100 bytes = 2 lines
        assert_eq!(p.stats().flushes, 2);
        assert_eq!(p.stats().fences, 1);
    }

    #[test]
    fn spin_adds_latency() {
        let mut p = RealPmem::with_write_latency(4096, 20_000);
        p.write_u64(0, 1);
        let t = Instant::now();
        p.persist(0, 8);
        assert!(t.elapsed().as_nanos() >= 20_000);
    }

    #[test]
    fn alignment_is_cacheline() {
        let p = RealPmem::with_write_latency(128, 0);
        assert_eq!(p.raw().as_ptr() as usize % CACHELINE, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let p = RealPmem::with_write_latency(64, 0);
        let mut b = [0u8; 8];
        p.read(60, &mut b);
    }

    #[test]
    fn prefetch_is_a_pure_hint() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        p.write_u64(256, 0x5E1F);
        let before = p.stats();
        p.prefetch(256, 128);
        let h = p.read_handle();
        h.prefetch(256, 64);
        let after = p.stats();
        assert_eq!(before, after, "prefetch must not touch counters");
        assert_eq!(p.read_u64(256), 0x5E1F, "contents untouched");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_prefetch_panics() {
        let p = RealPmem::with_write_latency(64, 0);
        p.prefetch(64, 8);
    }

    #[test]
    fn reader_handle_shares_pool_across_threads() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        p.write_u64(128, 4242);
        let h = p.read_handle();
        let t = std::thread::spawn(move || h.read_u64(128));
        assert_eq!(t.join().unwrap(), 4242);
    }

    #[test]
    fn write_handle_roundtrip_and_counts() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        let w = p.write_handle();
        w.write_u64(64, 0xC0FFEE);
        w.persist(64, 8);
        assert_eq!(p.read_u64(64), 0xC0FFEE);
        let s = p.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.fences, 1);
    }

    #[test]
    fn cas_matches_and_mismatches() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        p.write_u64(0, 3);
        p.reset_stats();
        let w = p.write_handle();
        assert_eq!(w.compare_exchange_u64(0, 3, 4), Ok(3));
        assert_eq!(w.compare_exchange_u64(0, 3, 5), Err(4));
        assert_eq!(p.read_u64(0), 4);
        assert_eq!(p.stats().atomic_writes, 2, "every attempt counts");
    }

    #[test]
    fn cas_resolves_races_between_handles() {
        let mut p = RealPmem::with_write_latency(4096, 0);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let w = p.write_handle();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        loop {
                            let cur = w.read_u64(0);
                            if w.compare_exchange_u64(0, cur, cur + 1).is_ok() {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(p.read_u64(0), 4000, "no lost increments");
    }
}
