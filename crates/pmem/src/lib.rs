//! Non-volatile memory substrate.
//!
//! The group-hashing paper runs on DRAM-emulated NVM: stores go through the
//! CPU cache, `clflush` + `mfence` make them durable, and an extra write
//! latency (300 ns by default) is charged after each cacheline flush. This
//! crate provides that substrate twice, behind one trait:
//!
//! * [`SimPmem`] — a deterministic simulator. It models the volatile-cache /
//!   persistent-media boundary explicitly: stores are volatile until the
//!   line is flushed **and** a fence retires the flush; naturally-aligned
//!   8-byte stores are failure-atomic (the paper's atomicity unit); larger
//!   writes can tear at 8-byte boundaries on a crash. It is coupled to the
//!   [`nvm_cachesim`] hierarchy for L3-miss accounting and to a simulated
//!   clock for latency accounting, and it supports *crash injection* at any
//!   memory event for consistency testing.
//! * [`RealPmem`] — a 64-byte-aligned DRAM region driven by real
//!   `clflush`/`sfence`/`mfence` intrinsics (`core::arch::x86_64`) plus a
//!   calibrated spin to emulate NVM's slower writes, exactly the PMFS-style
//!   methodology of the paper's testbed. Used for wall-clock benchmarks.
//!
//! Data structures built on top are generic over [`Pmem`], so the same table
//! code runs under the simulator (deterministic experiments, crash tests)
//! and on real intrinsics (criterion benches).
//!
//! # Read/write capability split
//!
//! The query path of a hash table is read-only, and on a concurrent wrapper
//! it must not serialize behind writers. The trait surface is therefore
//! split in two:
//!
//! * [`PmemRead`] — shared-capability reads: `read`/`read_u64` take `&self`,
//!   so any number of threads holding `&P` (or a cloned
//!   [`Pmem::ReadHandle`]) can probe concurrently. Read-side accounting is
//!   kept in atomics internally.
//! * [`Pmem`] — the exclusive half: every mutation (`write`,
//!   `atomic_write_u64`, `flush`, `fence`) still requires `&mut self`, which
//!   statically guarantees a single writer.
//!
//! [`Pmem::read_handle`] yields an owning, cloneable [`PmemRead`] view
//! (`Send + Sync`) that shares the backing pool, for reader threads that
//! cannot borrow the writer's `&self`. Torn reads racing a concurrent
//! writer are possible by design; callers layer a validation protocol (e.g.
//! the seqlock in `group_hash::ShardedGroupHash`) on top.
//!
//! # Consistency contract
//!
//! A store is **durable** only after (1) `flush` of its line and (2) a
//! subsequent `fence`. On a simulated crash:
//!
//! * durable bytes survive verbatim;
//! * every *non-durable* dirty 8-byte word independently either reaches the
//!   media or not (seeded, reproducible) — lines can also be evicted by the
//!   cache on their own, which is why unflushed data may still persist;
//! * an aligned 8-byte word is never torn.

mod clock;
mod crash;
mod image;
mod real;
mod region;
mod sim;
mod stats;

pub use clock::{LatencyModel, SimClock};
pub use crash::{run_with_crash, CrashPlan, CrashResolution, CrashSignal};
pub use real::{RealPmem, RealPmemReader, RealPmemWriter};
pub use region::{align_up, Region, RegionAllocator, CACHELINE};
pub use sim::{SimConfig, SimPmem, SimPmemReader, SimPmemWriter};
pub use stats::PmemStats;

use nvm_cachesim::CacheStats;

/// Shared-capability reads over byte-addressable persistent memory.
///
/// Everything here takes `&self`: multiple threads may probe the same pool
/// concurrently. Implementations keep their read-side accounting in atomics
/// (or skip contended accounting) so the hot path stays lock-free.
///
/// A read that races an in-flight [`Pmem::write`] to the same bytes may
/// observe a torn mixture; callers that share a pool with a live writer
/// must validate reads (generation/seqlock) before trusting them.
pub trait PmemRead {
    /// Reads `buf.len()` bytes at `off`.
    fn read(&self, off: usize, buf: &mut [u8]);

    /// Reads a little-endian u64 at `off` (any alignment).
    fn read_u64(&self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Pool capacity in bytes.
    fn len(&self) -> usize;

    /// True if the pool has zero capacity.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hints that the cachelines overlapping `[off, off + len)` are about
    /// to be read, so the hardware can start the fill while the caller
    /// does other work. Purely advisory: no ordering, no durability, no
    /// effect on contents. Backends that model the cache hierarchy install
    /// the lines and charge only the issue cost; [`RealPmem`] maps it to
    /// `prefetcht0`; the default is a no-op.
    ///
    /// This is the primitive under the vectorized `get_batch` read path:
    /// hash a whole key vector, prefetch every candidate line, then
    /// resolve the probes against warm lines.
    fn prefetch(&self, off: usize, len: usize) {
        let _ = (off, len);
    }
}

/// Shared-capability mutation over persistent memory, for lock-free
/// writers.
///
/// Everything here takes `&self`: many writer threads may mutate the same
/// pool concurrently through cloned [`Pmem::WriteHandle`]s. The safety
/// contract is the caller's: concurrent writers must target disjoint bytes
/// (a cell-claim table, a latch, or a lock keeps them apart), with one
/// exception — [`PmemWrite::compare_exchange_u64`] on the *same* aligned
/// word is the supported contention point, exactly the 8-byte
/// occupancy-bitmap CAS the lock-free insert path is built on.
///
/// The persistence contract is unchanged from [`Pmem`]: a store is durable
/// only after its line is flushed and a fence retires the flush.
pub trait PmemWrite: PmemRead {
    /// Writes `data` at `off`. Volatile until flushed and fenced. Callers
    /// must guarantee no concurrent writer touches the same bytes.
    fn write(&self, off: usize, data: &[u8]);

    /// Writes a little-endian u64 at `off` (any alignment; not atomic
    /// unless 8-byte aligned).
    fn write_u64(&self, off: usize, v: u64) {
        self.write(off, &v.to_le_bytes());
    }

    /// Failure-atomic 8-byte store. `off` must be 8-byte aligned; panics
    /// otherwise.
    fn atomic_write_u64(&self, off: usize, v: u64);

    /// Atomic compare-and-swap of the aligned 8-byte word at `off`:
    /// if the word equals `current`, stores `new` and returns `Ok(current)`;
    /// otherwise returns `Err(actual)` with the observed value. `off` must
    /// be 8-byte aligned; panics otherwise.
    ///
    /// Every attempt counts as one atomic write in [`PmemStats`] (the
    /// paper's cost model charges the store-buffer/XADD traffic whether or
    /// not the CAS wins); like every store, the result is volatile until
    /// flushed and fenced.
    fn compare_exchange_u64(&self, off: usize, current: u64, new: u64) -> Result<u64, u64>;

    /// Initiates write-back-and-invalidate (`clflush`) of every cacheline
    /// overlapping `[off, off + len)`. Durability requires a later `fence`.
    fn flush(&self, off: usize, len: usize);

    /// Orders and retires outstanding flushes (`mfence`).
    fn fence(&self);

    /// `flush` + `fence` — the paper's `Persist`.
    fn persist(&self, off: usize, len: usize) {
        self.flush(off, len);
        self.fence();
    }
}

/// Byte-addressable persistent memory with explicit persistence control.
///
/// Offsets are pool-relative byte addresses. All mutation is volatile until
/// [`Pmem::flush`] + [`Pmem::fence`]; [`Pmem::persist`] is the common
/// `clflush; mfence` pairing the paper calls *Persist*.
///
/// Reads live on the [`PmemRead`] supertrait (`&self`); mutation, flushes
/// and fences stay here on `&mut self`, so the borrow checker enforces the
/// single-writer/many-readers discipline. Concurrent writers opt out of
/// that static guarantee explicitly via [`Pmem::write_handle`], whose
/// [`PmemWrite`] surface shifts the disjointness obligation onto a runtime
/// protocol (claims + CAS).
pub trait Pmem: PmemRead {
    /// Owning shared-read view of the same pool, for reader threads.
    type ReadHandle: PmemRead + Clone + Send + Sync + 'static;

    /// Owning shared-write view of the same pool, for concurrent writer
    /// threads running a claim/CAS protocol.
    type WriteHandle: PmemWrite + Clone + Send + Sync + 'static;

    /// Returns a cloneable [`PmemRead`] handle sharing this pool's backing
    /// storage. Reads through the handle observe the writer's stores (with
    /// no ordering guarantee beyond what the caller's own protocol adds).
    fn read_handle(&self) -> Self::ReadHandle;

    /// Returns a cloneable [`PmemWrite`] handle sharing this pool's backing
    /// storage and counters. Takes `&mut self`: minting the first shared
    /// writer is itself a write-capability operation, so a `&P` reader can
    /// never conjure mutation rights out of a shared borrow.
    fn write_handle(&mut self) -> Self::WriteHandle;

    /// Writes `data` at `off`. Volatile until flushed and fenced.
    fn write(&mut self, off: usize, data: &[u8]);

    /// Writes a little-endian u64 at `off` (any alignment; not atomic
    /// unless 8-byte aligned).
    fn write_u64(&mut self, off: usize, v: u64) {
        self.write(off, &v.to_le_bytes());
    }

    /// Failure-atomic 8-byte store. `off` must be 8-byte aligned; panics
    /// otherwise. This is the paper's commit primitive: on a crash the word
    /// holds either the old or the new value, never a mixture.
    fn atomic_write_u64(&mut self, off: usize, v: u64);

    /// Initiates write-back-and-invalidate (`clflush`) of every cacheline
    /// overlapping `[off, off + len)`. Durability requires a later `fence`.
    fn flush(&mut self, off: usize, len: usize);

    /// Orders and retires outstanding flushes (`mfence`).
    fn fence(&mut self);

    /// `flush` + `fence` — the paper's `Persist`.
    fn persist(&mut self, off: usize, len: usize) {
        self.flush(off, len);
        self.fence();
    }

    /// Snapshot of the operation counters.
    ///
    /// By value: counters live in atomics (shared with read handles), so
    /// there is no stable `&PmemStats` to hand out.
    fn stats(&self) -> PmemStats;

    /// Resets operation counters (and, where applicable, cache statistics
    /// and the simulated clock) without touching contents.
    fn reset_stats(&mut self);

    /// Simulated elapsed nanoseconds, if this backend models time.
    fn sim_time_ns(&self) -> Option<u64> {
        None
    }

    /// Snapshot of cache-hierarchy statistics, if this backend models the
    /// CPU cache.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn default_u64_roundtrip_on_sim() {
        let mut p = SimPmem::new(4096, SimConfig::fast_test());
        p.write_u64(16, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.read_u64(16), 0xDEAD_BEEF_CAFE_F00D);
        assert!(!p.is_empty());
    }

    #[test]
    fn read_handle_sees_writes_and_is_send_sync() {
        fn assert_handle<H: PmemRead + Clone + Send + Sync + 'static>(_: &H) {}
        let mut p = SimPmem::new(4096, SimConfig::fast_test());
        let h = p.read_handle();
        assert_handle(&h);
        p.write_u64(64, 77);
        assert_eq!(h.read_u64(64), 77);
        assert_eq!(h.len(), 4096);
        let h2 = h.clone();
        assert_eq!(h2.read_u64(64), 77);
    }
}
