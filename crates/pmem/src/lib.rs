//! Non-volatile memory substrate.
//!
//! The group-hashing paper runs on DRAM-emulated NVM: stores go through the
//! CPU cache, `clflush` + `mfence` make them durable, and an extra write
//! latency (300 ns by default) is charged after each cacheline flush. This
//! crate provides that substrate twice, behind one trait:
//!
//! * [`SimPmem`] — a deterministic simulator. It models the volatile-cache /
//!   persistent-media boundary explicitly: stores are volatile until the
//!   line is flushed **and** a fence retires the flush; naturally-aligned
//!   8-byte stores are failure-atomic (the paper's atomicity unit); larger
//!   writes can tear at 8-byte boundaries on a crash. It is coupled to the
//!   [`nvm_cachesim`] hierarchy for L3-miss accounting and to a simulated
//!   clock for latency accounting, and it supports *crash injection* at any
//!   memory event for consistency testing.
//! * [`RealPmem`] — a 64-byte-aligned DRAM region driven by real
//!   `clflush`/`sfence`/`mfence` intrinsics (`core::arch::x86_64`) plus a
//!   calibrated spin to emulate NVM's slower writes, exactly the PMFS-style
//!   methodology of the paper's testbed. Used for wall-clock benchmarks.
//!
//! Data structures built on top are generic over [`Pmem`], so the same table
//! code runs under the simulator (deterministic experiments, crash tests)
//! and on real intrinsics (criterion benches).
//!
//! # Consistency contract
//!
//! A store is **durable** only after (1) `flush` of its line and (2) a
//! subsequent `fence`. On a simulated crash:
//!
//! * durable bytes survive verbatim;
//! * every *non-durable* dirty 8-byte word independently either reaches the
//!   media or not (seeded, reproducible) — lines can also be evicted by the
//!   cache on their own, which is why unflushed data may still persist;
//! * an aligned 8-byte word is never torn.

mod clock;
mod crash;
mod image;
mod real;
mod region;
mod sim;
mod stats;

pub use clock::{LatencyModel, SimClock};
pub use crash::{run_with_crash, CrashPlan, CrashResolution, CrashSignal};
pub use real::RealPmem;
pub use region::{align_up, Region, RegionAllocator, CACHELINE};
pub use sim::{SimConfig, SimPmem};
pub use stats::PmemStats;

use nvm_cachesim::CacheStats;

/// Byte-addressable persistent memory with explicit persistence control.
///
/// Offsets are pool-relative byte addresses. All mutation is volatile until
/// [`Pmem::flush`] + [`Pmem::fence`]; [`Pmem::persist`] is the common
/// `clflush; mfence` pairing the paper calls *Persist*.
pub trait Pmem {
    /// Reads `buf.len()` bytes at `off`.
    fn read(&mut self, off: usize, buf: &mut [u8]);

    /// Writes `data` at `off`. Volatile until flushed and fenced.
    fn write(&mut self, off: usize, data: &[u8]);

    /// Reads a little-endian u64 at `off` (any alignment).
    fn read_u64(&mut self, off: usize) -> u64 {
        let mut b = [0u8; 8];
        self.read(off, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian u64 at `off` (any alignment; not atomic
    /// unless 8-byte aligned).
    fn write_u64(&mut self, off: usize, v: u64) {
        self.write(off, &v.to_le_bytes());
    }

    /// Failure-atomic 8-byte store. `off` must be 8-byte aligned; panics
    /// otherwise. This is the paper's commit primitive: on a crash the word
    /// holds either the old or the new value, never a mixture.
    fn atomic_write_u64(&mut self, off: usize, v: u64);

    /// Initiates write-back-and-invalidate (`clflush`) of every cacheline
    /// overlapping `[off, off + len)`. Durability requires a later `fence`.
    fn flush(&mut self, off: usize, len: usize);

    /// Orders and retires outstanding flushes (`mfence`).
    fn fence(&mut self);

    /// `flush` + `fence` — the paper's `Persist`.
    fn persist(&mut self, off: usize, len: usize) {
        self.flush(off, len);
        self.fence();
    }

    /// Pool capacity in bytes.
    fn len(&self) -> usize;

    /// True if the pool has zero capacity.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Operation counters.
    fn stats(&self) -> &PmemStats;

    /// Resets operation counters (and, where applicable, cache statistics
    /// and the simulated clock) without touching contents.
    fn reset_stats(&mut self);

    /// Simulated elapsed nanoseconds, if this backend models time.
    fn sim_time_ns(&self) -> Option<u64> {
        None
    }

    /// Cache-hierarchy statistics, if this backend models the CPU cache.
    fn cache_stats(&self) -> Option<&CacheStats> {
        None
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn default_u64_roundtrip_on_sim() {
        let mut p = SimPmem::new(4096, SimConfig::fast_test());
        p.write_u64(16, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(p.read_u64(16), 0xDEAD_BEEF_CAFE_F00D);
        assert!(!p.is_empty());
    }
}
