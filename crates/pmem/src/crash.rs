//! Crash injection for consistency testing.
//!
//! [`SimPmem`](crate::SimPmem) counts *mutation events* (writes, per-line
//! flushes, fences). A [`CrashPlan`] arms the simulator to panic with a
//! [`CrashSignal`] immediately **before** applying event number `at_event`,
//! so a plan with `at_event = k` leaves exactly the first `k` events
//! applied. A test harness enumerates `k` over an operation's whole event
//! range and, for each prefix, resolves the crash state and checks that
//! recovery restores every invariant.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Arms the simulator to crash at a specific mutation event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Zero-based event index at which to crash. `0` crashes before the
    /// first mutation.
    pub at_event: u64,
}

/// Panic payload used for simulated crashes. Carried by unwinding so that
/// table code needs no `Result` plumbing on every store — exactly like a
/// real power failure, it can strike between any two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSignal {
    /// The event index at which the crash fired.
    pub at_event: u64,
}

/// How unfenced dirty words resolve at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashResolution {
    /// Each non-durable dirty 8-byte word independently persists or not,
    /// decided by a seeded PRNG. Models arbitrary cache eviction order.
    Random(u64),
    /// No non-durable word persists. The adversary for missing flushes.
    DropUnflushed,
    /// Every dirty word persists (as if all lines were evicted just in
    /// time). The adversary for wrong *ordering* rather than missing
    /// persistence.
    PersistAll,
    /// Deterministically alternates drop/persist across the dirty words
    /// (in address order), starting with `persist_first`. Guarantees
    /// *mixed* outcomes — e.g. a commit flag persisting while its record
    /// does not — that random seeds may happen to miss.
    Alternate {
        persist_first: bool,
    },
}

static HOOK_INIT: Once = Once::new();

fn install_quiet_hook() {
    HOOK_INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Simulated crashes are expected control flow — stay silent.
            if info.payload().downcast_ref::<CrashSignal>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs `f`, catching a simulated crash.
///
/// Returns `Ok(r)` if `f` completed, `Err(signal)` if a [`CrashSignal`]
/// unwound out of it. Any other panic is propagated unchanged.
pub fn run_with_crash<R>(f: impl FnOnce() -> R) -> Result<R, CrashSignal> {
    install_quiet_hook();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<CrashSignal>() {
            Ok(sig) => Err(*sig),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_run_returns_ok() {
        assert_eq!(run_with_crash(|| 7), Ok(7));
    }

    #[test]
    fn crash_signal_is_caught() {
        let r: Result<(), _> = run_with_crash(|| {
            std::panic::panic_any(CrashSignal { at_event: 3 });
        });
        assert_eq!(r, Err(CrashSignal { at_event: 3 }));
    }

    #[test]
    fn other_panics_propagate() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _: Result<(), _> = run_with_crash(|| panic!("real bug"));
        }));
        assert!(r.is_err());
    }
}
