//! Simulated time accounting.
//!
//! The simulator charges each memory event a configurable cost and
//! accumulates nanoseconds on a [`SimClock`]. The defaults approximate the
//! paper's testbed (Table 2 Xeon, Table 1 memory technologies, and the
//! 300 ns emulated NVM write latency from §4.1). Absolute values are a
//! model, not a measurement — the experiments compare schemes under the
//! *same* model, which is what reproduces the paper's relative shapes.

use nvm_cachesim::HitLevel;

/// Cost, in nanoseconds, of each simulated memory event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Load/store hitting L1.
    pub l1_ns: f64,
    /// ... hitting L2.
    pub l2_ns: f64,
    /// ... hitting L3.
    pub l3_ns: f64,
    /// ... missing all caches (DRAM/NVM read; the paper emulates NVM reads
    /// at DRAM latency).
    pub mem_ns: f64,
    /// `clflush` of a dirty line: write-back reaching the NVM media. The
    /// paper adds 300 ns after each clflush to emulate slow NVM writes.
    pub nvm_writeback_ns: f64,
    /// `clflush` of a clean line (invalidate only).
    pub clean_flush_ns: f64,
    /// `mfence`.
    pub fence_ns: f64,
    /// Issue cost of a software prefetch (`prefetcht0`). The fill itself
    /// overlaps with other work, so the clock only pays the issue slot;
    /// the line still lands in the simulated hierarchy, which is what
    /// makes the *next* access to it a cache hit.
    pub prefetch_issue_ns: f64,
}

impl LatencyModel {
    /// The paper's configuration: DRAM-like reads, 300 ns extra per flushed
    /// dirty line.
    pub fn paper_default() -> Self {
        LatencyModel {
            l1_ns: 1.5,
            l2_ns: 5.0,
            l3_ns: 20.0,
            mem_ns: 85.0,
            nvm_writeback_ns: 300.0,
            clean_flush_ns: 40.0,
            fence_ns: 15.0,
            prefetch_issue_ns: 5.0,
        }
    }

    /// A PCM-flavoured preset (Table 1: slower writes).
    pub fn pcm() -> Self {
        LatencyModel {
            nvm_writeback_ns: 500.0,
            ..Self::paper_default()
        }
    }

    /// An STT-MRAM-flavoured preset (Table 1: near-DRAM writes).
    pub fn stt_mram() -> Self {
        LatencyModel {
            nvm_writeback_ns: 30.0,
            ..Self::paper_default()
        }
    }

    /// Cost of an access that resolved at `level`.
    #[inline]
    pub fn access_cost(&self, level: HitLevel) -> f64 {
        match level {
            HitLevel::L1 => self.l1_ns,
            HitLevel::L2 => self.l2_ns,
            HitLevel::L3 => self.l3_ns,
            HitLevel::Memory => self.mem_ns,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Accumulates simulated nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    ns: f64,
}

impl SimClock {
    pub fn new() -> Self {
        SimClock::default()
    }

    #[inline]
    pub fn advance(&mut self, ns: f64) {
        debug_assert!(ns >= 0.0);
        self.ns += ns;
    }

    /// Elapsed simulated time, truncated to whole nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns as u64
    }

    pub fn reset(&mut self) {
        self.ns = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = SimClock::new();
        c.advance(1.5);
        c.advance(2.0);
        assert_eq!(c.now_ns(), 3);
        c.reset();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn access_cost_ordering() {
        let m = LatencyModel::paper_default();
        assert!(m.access_cost(HitLevel::L1) < m.access_cost(HitLevel::L2));
        assert!(m.access_cost(HitLevel::L2) < m.access_cost(HitLevel::L3));
        assert!(m.access_cost(HitLevel::L3) < m.access_cost(HitLevel::Memory));
        // The paper's central premise: an NVM write-back costs much more
        // than any read.
        assert!(m.nvm_writeback_ns > m.mem_ns);
    }

    #[test]
    fn presets_differ_in_write_latency() {
        assert!(LatencyModel::pcm().nvm_writeback_ns > LatencyModel::paper_default().nvm_writeback_ns);
        assert!(LatencyModel::stt_mram().nvm_writeback_ns < LatencyModel::paper_default().nvm_writeback_ns);
    }

    #[test]
    fn prefetch_issue_is_cheaper_than_any_miss() {
        // The entire point of prefetching: issuing the hint costs less
        // than the L2 hit it might save, let alone a memory miss.
        let m = LatencyModel::paper_default();
        assert!(m.prefetch_issue_ns > 0.0);
        assert!(m.prefetch_issue_ns <= m.l2_ns);
        assert!(m.prefetch_issue_ns < m.mem_ns);
    }
}
