//! Operation counters for pmem backends.

/// Counts of persistence-relevant operations since the last reset.
///
/// The paper's write-efficiency argument is quantitative: logging roughly
/// doubles `flushes` and `bytes_written`, and each flush both costs NVM
/// write latency and invalidates a cacheline. These counters let tests
/// assert those relationships exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStats {
    /// `read` calls.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// `write` calls (including atomic writes).
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Failure-atomic 8-byte stores.
    pub atomic_writes: u64,
    /// Individual cachelines flushed (a `flush` spanning n lines counts n).
    pub flushes: u64,
    /// Memory fences.
    pub fences: u64,
}

impl PmemStats {
    pub fn reset(&mut self) {
        *self = PmemStats::default();
    }

    /// `self - earlier`, for measuring a window.
    ///
    /// Saturating: if the counters were reset between the `earlier`
    /// snapshot and now, each field clamps to 0 instead of wrapping (a
    /// reset mid-window previously panicked in debug builds).
    pub fn delta_since(&self, earlier: &PmemStats) -> PmemStats {
        PmemStats {
            reads: self.reads.saturating_sub(earlier.reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            atomic_writes: self.atomic_writes.saturating_sub(earlier.atomic_writes),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_reset() {
        let mut s = PmemStats {
            reads: 5,
            bytes_read: 40,
            writes: 3,
            bytes_written: 24,
            atomic_writes: 1,
            flushes: 2,
            fences: 2,
        };
        let earlier = PmemStats {
            reads: 1,
            bytes_read: 8,
            writes: 1,
            bytes_written: 8,
            atomic_writes: 0,
            flushes: 1,
            fences: 1,
        };
        let d = s.delta_since(&earlier);
        assert_eq!(d.reads, 4);
        assert_eq!(d.flushes, 1);
        s.reset();
        assert_eq!(s, PmemStats::default());
    }

    /// Regression: a reset between snapshot and delta used to underflow
    /// (panic in debug builds). It must clamp to zero instead.
    #[test]
    fn delta_saturates_after_reset() {
        let earlier = PmemStats {
            reads: 10,
            bytes_read: 80,
            writes: 7,
            bytes_written: 56,
            atomic_writes: 2,
            flushes: 4,
            fences: 4,
        };
        let mut now = earlier;
        now.reset();
        now.reads = 3; // fewer than the pre-reset snapshot
        let d = now.delta_since(&earlier);
        assert_eq!(d, PmemStats::default());
    }
}
