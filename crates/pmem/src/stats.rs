//! Operation counters for pmem backends.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counts of persistence-relevant operations since the last reset.
///
/// The paper's write-efficiency argument is quantitative: logging roughly
/// doubles `flushes` and `bytes_written`, and each flush both costs NVM
/// write latency and invalidates a cacheline. These counters let tests
/// assert those relationships exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStats {
    /// `read` calls.
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// `write` calls (including atomic writes).
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Failure-atomic 8-byte stores.
    pub atomic_writes: u64,
    /// Individual cachelines flushed (a `flush` spanning n lines counts n).
    pub flushes: u64,
    /// Memory fences.
    pub fences: u64,
}

impl PmemStats {
    pub fn reset(&mut self) {
        *self = PmemStats::default();
    }

    /// `self - earlier`, for measuring a window.
    ///
    /// Saturating: if the counters were reset between the `earlier`
    /// snapshot and now, each field clamps to 0 instead of wrapping (a
    /// reset mid-window previously panicked in debug builds).
    pub fn delta_since(&self, earlier: &PmemStats) -> PmemStats {
        PmemStats {
            reads: self.reads.saturating_sub(earlier.reads),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            atomic_writes: self.atomic_writes.saturating_sub(earlier.atomic_writes),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            fences: self.fences.saturating_sub(earlier.fences),
        }
    }
}

/// Interior-mutable [`PmemStats`], shared between a pmem backend and its
/// cloned read handles.
///
/// Reads come from `&self` (possibly many threads at once), so the read
/// counters must be atomics; for uniformity every field is. All updates are
/// `Relaxed` — these are statistics, not synchronization, and a snapshot
/// taken while operations are in flight is only approximately consistent
/// across fields (exact once the pool is quiescent).
#[derive(Debug, Default)]
pub(crate) struct AtomicPmemStats {
    reads: AtomicU64,
    bytes_read: AtomicU64,
    writes: AtomicU64,
    bytes_written: AtomicU64,
    atomic_writes: AtomicU64,
    flushes: AtomicU64,
    fences: AtomicU64,
}

impl AtomicPmemStats {
    pub(crate) fn note_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn note_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn note_atomic_write(&self) {
        self.atomic_writes.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_flush_lines(&self, lines: u64) {
        self.flushes.fetch_add(lines, Ordering::Relaxed);
    }

    pub(crate) fn note_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> PmemStats {
        PmemStats {
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            atomic_writes: self.atomic_writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn set(&self, s: PmemStats) {
        self.reads.store(s.reads, Ordering::Relaxed);
        self.bytes_read.store(s.bytes_read, Ordering::Relaxed);
        self.writes.store(s.writes, Ordering::Relaxed);
        self.bytes_written.store(s.bytes_written, Ordering::Relaxed);
        self.atomic_writes.store(s.atomic_writes, Ordering::Relaxed);
        self.flushes.store(s.flushes, Ordering::Relaxed);
        self.fences.store(s.fences, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        self.set(PmemStats::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_reset() {
        let mut s = PmemStats {
            reads: 5,
            bytes_read: 40,
            writes: 3,
            bytes_written: 24,
            atomic_writes: 1,
            flushes: 2,
            fences: 2,
        };
        let earlier = PmemStats {
            reads: 1,
            bytes_read: 8,
            writes: 1,
            bytes_written: 8,
            atomic_writes: 0,
            flushes: 1,
            fences: 1,
        };
        let d = s.delta_since(&earlier);
        assert_eq!(d.reads, 4);
        assert_eq!(d.flushes, 1);
        s.reset();
        assert_eq!(s, PmemStats::default());
    }

    /// Regression: a reset between snapshot and delta used to underflow
    /// (panic in debug builds). It must clamp to zero instead.
    #[test]
    fn delta_saturates_after_reset() {
        let earlier = PmemStats {
            reads: 10,
            bytes_read: 80,
            writes: 7,
            bytes_written: 56,
            atomic_writes: 2,
            flushes: 4,
            fences: 4,
        };
        let mut now = earlier;
        now.reset();
        now.reads = 3; // fewer than the pre-reset snapshot
        let d = now.delta_since(&earlier);
        assert_eq!(d, PmemStats::default());
    }
}
