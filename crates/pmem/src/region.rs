//! Pool-relative region bookkeeping.
//!
//! Persistent structures carve a pool into named, cacheline-aligned regions
//! (header, bitmaps, cell arrays, log area, ...). `RegionAllocator` is a
//! bump allocator over offsets — it allocates *address space*, not memory;
//! the pool's bytes already exist.

/// Cacheline width in bytes (matches [`nvm_cachesim::LINE_BYTES`]).
pub const CACHELINE: usize = 64;

/// Rounds `x` up to a multiple of `align` (power of two).
#[inline]
pub const fn align_up(x: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

/// A contiguous byte range inside a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub off: usize,
    pub len: usize,
}

impl Region {
    pub fn new(off: usize, len: usize) -> Self {
        Region { off, len }
    }

    /// End offset (exclusive).
    pub fn end(&self) -> usize {
        self.off + self.len
    }

    /// True if `[off, off+len)` lies within this region.
    pub fn contains(&self, off: usize, len: usize) -> bool {
        off >= self.off && off + len <= self.end()
    }

    /// Splits off the first `n` bytes.
    pub fn take_prefix(&mut self, n: usize) -> Region {
        assert!(n <= self.len, "prefix {n} exceeds region length {}", self.len);
        let r = Region::new(self.off, n);
        self.off += n;
        self.len -= n;
        r
    }
}

/// Bump allocator over a pool's offset space.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    cursor: usize,
    limit: usize,
}

impl RegionAllocator {
    /// Allocates offsets in `[start, limit)`.
    pub fn new(start: usize, limit: usize) -> Self {
        assert!(start <= limit);
        RegionAllocator {
            cursor: start,
            limit,
        }
    }

    /// Allocates `len` bytes aligned to `align`. Panics on exhaustion —
    /// pool sizing is a construction-time decision, not a runtime fallible
    /// path.
    pub fn alloc(&mut self, len: usize, align: usize) -> Region {
        let off = align_up(self.cursor, align);
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.limit),
            "pool exhausted: need {len} bytes at {off}, limit {}",
            self.limit
        );
        self.cursor = off + len;
        Region::new(off, len)
    }

    /// Allocates a cacheline-aligned region.
    pub fn alloc_lines(&mut self, len: usize) -> Region {
        self.alloc(len, CACHELINE)
    }

    /// Remaining bytes (before alignment padding).
    pub fn remaining(&self) -> usize {
        self.limit - self.cursor
    }

    /// Current cursor offset.
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 8), 72);
    }

    #[test]
    fn regions_do_not_overlap() {
        let mut a = RegionAllocator::new(0, 1024);
        let r1 = a.alloc(10, 8);
        let r2 = a.alloc(100, 64);
        let r3 = a.alloc_lines(64);
        assert!(r1.end() <= r2.off);
        assert!(r2.end() <= r3.off);
        assert_eq!(r2.off % 64, 0);
        assert_eq!(r3.off % 64, 0);
    }

    #[test]
    fn contains_checks_bounds() {
        let r = Region::new(64, 128);
        assert!(r.contains(64, 128));
        assert!(r.contains(100, 10));
        assert!(!r.contains(63, 2));
        assert!(!r.contains(190, 3));
    }

    #[test]
    fn take_prefix_advances() {
        let mut r = Region::new(0, 100);
        let p = r.take_prefix(30);
        assert_eq!(p, Region::new(0, 30));
        assert_eq!(r, Region::new(30, 70));
    }

    #[test]
    #[should_panic(expected = "pool exhausted")]
    fn alloc_past_limit_panics() {
        let mut a = RegionAllocator::new(0, 64);
        a.alloc(65, 1);
    }
}
