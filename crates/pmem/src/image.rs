//! Pool images on disk.
//!
//! Real persistent memory keeps its contents across process restarts; a
//! DRAM-backed emulation does not. This module closes the gap the way
//! NVM emulators usually do (PMFS in the paper's testbed backs the region
//! with a file): a pool can be *saved* to a file and *loaded* back, so
//! examples and applications can demonstrate end-to-end durability.
//!
//! Saving a [`SimPmem`] requires the pool to be **quiescent** — every
//! store flushed and fenced — because a file image of half-volatile state
//! would claim durability the model never granted. [`RealPmem`] has no
//! such tracking; its image is simply its current bytes.
//!
//! # File format
//!
//! ```text
//! +0   8  magic "NVMPOOL1"
//! +8   8  payload length (LE)
//! +16  .. payload bytes
//! ```

use crate::{Pmem, RealPmem, SimConfig, SimPmem};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"NVMPOOL1";

/// Writes a pool image.
fn save_bytes(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(MAGIC)?;
    f.write_all(&(bytes.len() as u64).to_le_bytes())?;
    f.write_all(bytes)?;
    f.sync_all()
}

/// Reads a pool image.
fn load_bytes(path: &Path) -> io::Result<Vec<u8>> {
    let mut f = fs::File::open(path)?;
    let mut header = [0u8; 16];
    f.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an NVM pool image (bad magic)",
        ));
    }
    let len = u64::from_le_bytes(header[8..].try_into().unwrap()) as usize;
    let mut bytes = vec![0u8; len];
    f.read_exact(&mut bytes)?;
    Ok(bytes)
}

impl SimPmem {
    /// Saves the pool to `path`. Fails unless the pool is quiescent
    /// (no non-durable words) — persist your data first.
    pub fn save_image(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if self.non_durable_words() != 0 {
            return Err(io::Error::other(format!(
                "pool has {} non-durable words; persist before saving",
                self.non_durable_words()
            )));
        }
        save_bytes(path.as_ref(), self.raw())
    }

    /// Loads a pool image saved by [`SimPmem::save_image`]. The loaded
    /// pool starts fully durable with cold caches.
    pub fn load_image(path: impl AsRef<Path>, config: SimConfig) -> io::Result<SimPmem> {
        let bytes = load_bytes(path.as_ref())?;
        let mut pm = SimPmem::new(bytes.len(), config);
        // Bulk-install the image as durable media content, bypassing the
        // access model (this is "power-on", not program activity).
        pm.install_image(&bytes);
        Ok(pm)
    }
}

impl RealPmem {
    /// Saves the pool to `path`.
    pub fn save_image(&self, path: impl AsRef<Path>) -> io::Result<()> {
        save_bytes(path.as_ref(), self.raw())
    }

    /// Loads a pool image saved by [`RealPmem::save_image`], using the
    /// given emulated extra write latency.
    pub fn load_image(path: impl AsRef<Path>, extra_write_ns: u64) -> io::Result<RealPmem> {
        let bytes = load_bytes(path.as_ref())?;
        let mut pm = RealPmem::with_write_latency(bytes.len(), extra_write_ns);
        pm.write(0, &bytes);
        pm.fence();
        pm.reset_stats();
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrashResolution, PmemRead};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("nvm-pmem-image-{name}-{}", std::process::id()))
    }

    #[test]
    fn sim_roundtrip() {
        let path = tmp("sim");
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        pm.write_u64(64, 0xABCD);
        pm.persist(64, 8);
        pm.save_image(&path).unwrap();

        let mut pm2 = SimPmem::load_image(&path, SimConfig::fast_test()).unwrap();
        assert_eq!(pm2.read_u64(64), 0xABCD);
        assert_eq!(pm2.len(), 4096);
        // Loaded image is durable: a crash loses nothing.
        pm2.crash(CrashResolution::DropUnflushed);
        assert_eq!(pm2.read_u64(64), 0xABCD);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sim_refuses_non_quiescent() {
        let path = tmp("dirty");
        let mut pm = SimPmem::new(4096, SimConfig::fast_test());
        pm.write_u64(0, 7); // not persisted
        assert!(pm.save_image(&path).is_err());
        pm.persist(0, 8);
        pm.save_image(&path).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn real_roundtrip() {
        let path = tmp("real");
        let mut pm = RealPmem::with_write_latency(2048, 0);
        pm.write(100, b"durable bytes");
        pm.persist(100, 13);
        pm.save_image(&path).unwrap();

        let pm2 = RealPmem::load_image(&path, 0).unwrap();
        let mut buf = [0u8; 13];
        pm2.read(100, &mut buf);
        assert_eq!(&buf, b"durable bytes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("bad");
        std::fs::write(&path, b"garbage-file-contents").unwrap();
        assert!(SimPmem::load_image(&path, SimConfig::fast_test()).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
