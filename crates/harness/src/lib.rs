//! Experiment harness: regenerates every figure and table of the paper's
//! evaluation (§4) on the deterministic NVM simulator.
//!
//! One binary per experiment (`fig2`, `fig5`, `fig6`, `fig7`, `fig8`,
//! `table3`, plus `all`), each printing paper-style tables and optionally
//! writing CSV. Run them in release mode:
//!
//! ```text
//! cargo run --release -p gh-harness --bin fig5 -- --cells-log2 20
//! cargo run --release -p gh-harness --bin all  -- --out-dir results
//! ```
//!
//! Default table sizes are scaled down from the paper's 2^23–2^25 cells so
//! a full run finishes in minutes; pass `--full` for paper sizes. The
//! experiments reproduce *relative* behaviour (who wins, by what factor,
//! where crossovers fall); absolute nanoseconds depend on the latency
//! model (see `nvm_pmem::LatencyModel`).

pub mod args;
pub mod experiments;
pub mod schemes;
pub mod tablefmt;

pub use args::Args;
pub use schemes::{build_any, AnyScheme, SchemeKind};
pub use tablefmt::Table;

/// Key/value shapes used by the paper's traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// 16-byte items: u64 key, u64 value.
    RandomNum,
    /// 16-byte items: DocID‖WordID key, u64 value.
    BagOfWords,
    /// 32-byte items: MD5 key, 16-byte value.
    Fingerprint,
}

impl TraceKind {
    pub const ALL: [TraceKind; 3] = [
        TraceKind::RandomNum,
        TraceKind::BagOfWords,
        TraceKind::Fingerprint,
    ];

    pub fn label(self) -> &'static str {
        match self {
            TraceKind::RandomNum => "RandomNum",
            TraceKind::BagOfWords => "Bag-of-Words",
            TraceKind::Fingerprint => "Fingerprint",
        }
    }

    /// Paper table-size preset (cells) for this trace (§4.1).
    pub fn paper_cells_log2(self) -> u32 {
        match self {
            TraceKind::RandomNum => 23,
            TraceKind::BagOfWords => 24,
            TraceKind::Fingerprint => 25,
        }
    }
}
