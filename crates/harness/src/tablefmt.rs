//! Plain-text result tables + CSV/JSON output.

use nvm_metrics::Json;
use std::fmt::Write as _;
use std::path::Path;

/// A simple right-aligned results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            let mut first = true;
            for (c, w) in cells.iter().zip(widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.headers, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        out
    }

    /// CSV rendering (headers + rows, comma-separated, minimal quoting).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(esc).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Prints to stdout and, if `out_dir` is given, writes `<name>.csv`.
    pub fn emit(&self, out_dir: Option<&Path>, name: &str) {
        println!("{}", self.render());
        if let Some(dir) = out_dir {
            std::fs::create_dir_all(dir).expect("create out dir");
            let path = dir.join(format!("{name}.csv"));
            std::fs::write(&path, self.to_csv()).expect("write csv");
            println!("[csv] {}", path.display());
        }
    }
}

/// Writes an experiment's metrics document as `<name>_metrics.json`
/// under `out_dir` and prints its path. Without an out dir the (large)
/// document is not printed; a hint says how to get it.
pub fn emit_json(out_dir: Option<&Path>, name: &str, doc: &Json) {
    match out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create out dir");
            let path = dir.join(format!("{name}_metrics.json"));
            std::fs::write(&path, doc.to_string_pretty()).expect("write metrics json");
            println!("[json] {}", path.display());
        }
        None => println!("[metrics] pass --out-dir to write {name}_metrics.json"),
    }
}

/// Formats nanoseconds with 1 decimal.
pub fn ns(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a ratio/percentage with 2/1 decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a count with 2 decimals.
pub fn count(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage.
pub fn percent(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // Data lines have equal width.
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,5".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",plain"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ns(1234.56), "1234.6");
        assert_eq!(ratio(1.954), "1.95x");
        assert_eq!(percent(0.821), "82.1%");
        assert_eq!(count(2.345), "2.35");
    }

    #[test]
    fn emit_writes_csv() {
        let dir = std::env::temp_dir().join("gh-harness-test-csv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        t.emit(Some(&dir), "unit");
        let body = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(body, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
