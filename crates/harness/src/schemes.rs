//! Unified construction and dispatch over the compared hashing schemes.

use group_hash::{ChoiceMode, GroupHash, GroupHashConfig};
use nvm_baselines::{Iceberg, LinearProbing, MetaMode, PathHash, Pfht};
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
use nvm_table::{BatchError, ConsistencyMode, HashScheme, InsertError, TableError};

/// The configurations compared in the paper's figures, plus the two
/// post-paper extensions (group-2c and the stable iceberg scheme).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    Linear,
    LinearL,
    Pfht,
    PfhtL,
    Path,
    PathL,
    /// Extension (ROADMAP): an IcebergHT-style stable scheme — entries
    /// never move after insert, lookups are filtered by volatile
    /// fingerprint metadata words.
    Iceberg,
    /// Iceberg with the undo log armed (uniform `-L` treatment; its ops
    /// are single-word publishes, so the log is belt and braces).
    IcebergL,
    Group,
    /// Extension (paper §4.4): group hashing with a second hash function.
    Group2C,
}

impl SchemeKind {
    /// Everything, bare baselines included (Figure 2's cast).
    pub const ALL: [SchemeKind; 10] = [
        SchemeKind::Linear,
        SchemeKind::LinearL,
        SchemeKind::Pfht,
        SchemeKind::PfhtL,
        SchemeKind::Path,
        SchemeKind::PathL,
        SchemeKind::Iceberg,
        SchemeKind::IcebergL,
        SchemeKind::Group,
        SchemeKind::Group2C,
    ];

    /// The consistent schemes compared in Figures 5–6 (logged baselines +
    /// group hashing).
    pub const CONSISTENT: [SchemeKind; 4] = [
        SchemeKind::LinearL,
        SchemeKind::PfhtL,
        SchemeKind::PathL,
        SchemeKind::Group,
    ];

    /// The schemes with a bounded space-utilization ratio (Figure 7;
    /// linear probing fills to 1.0 and is excluded by the paper).
    pub const BOUNDED_UTIL: [SchemeKind; 5] = [
        SchemeKind::Pfht,
        SchemeKind::Path,
        SchemeKind::Iceberg,
        SchemeKind::Group,
        SchemeKind::Group2C,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Linear => "linear",
            SchemeKind::LinearL => "linear-L",
            SchemeKind::Pfht => "PFHT",
            SchemeKind::PfhtL => "PFHT-L",
            SchemeKind::Path => "path",
            SchemeKind::PathL => "path-L",
            SchemeKind::Iceberg => "iceberg",
            SchemeKind::IcebergL => "iceberg-L",
            SchemeKind::Group => "group",
            SchemeKind::Group2C => "group-2c",
        }
    }

    /// Parses a label as printed in figures/CSVs (case-insensitive), for
    /// `--schemes` on the command line.
    pub fn from_label(s: &str) -> Option<SchemeKind> {
        SchemeKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(s))
    }

    fn mode(self) -> ConsistencyMode {
        match self {
            SchemeKind::LinearL
            | SchemeKind::PfhtL
            | SchemeKind::PathL
            | SchemeKind::IcebergL => ConsistencyMode::UndoLog,
            _ => ConsistencyMode::None,
        }
    }
}

/// A scheme-erased persistent hash table (enum dispatch keeps everything
/// monomorphized and `HashScheme`'s `&mut P` signatures object-unsafe-free).
pub enum AnyScheme<P: Pmem, K: HashKey, V: Pod> {
    Linear(LinearProbing<P, K, V>),
    Pfht(Pfht<P, K, V>),
    Path(PathHash<P, K, V>),
    Iceberg(Iceberg<P, K, V>),
    Group(GroupHash<P, K, V>),
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            AnyScheme::Linear($t) => $e,
            AnyScheme::Pfht($t) => $e,
            AnyScheme::Path($t) => $e,
            AnyScheme::Iceberg($t) => $e,
            AnyScheme::Group($t) => $e,
        }
    };
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for AnyScheme<P, K, V> {
    fn name(&self) -> &'static str {
        dispatch!(self, t => HashScheme::<P, K, V>::name(t))
    }
    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        dispatch!(self, t => HashScheme::<P, K, V>::insert(t, pm, key, value))
    }
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        dispatch!(self, t => HashScheme::<P, K, V>::insert_batch(t, pm, items))
    }
    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        dispatch!(self, t => HashScheme::<P, K, V>::remove_batch(t, pm, keys))
    }
    fn get(&self, pm: &P, key: &K) -> Option<V> {
        dispatch!(self, t => HashScheme::<P, K, V>::get(t, pm, key))
    }
    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        dispatch!(self, t => HashScheme::<P, K, V>::remove(t, pm, key))
    }
    fn len(&self, pm: &P) -> u64 {
        dispatch!(self, t => HashScheme::<P, K, V>::len(t, pm))
    }
    fn capacity(&self) -> u64 {
        dispatch!(self, t => HashScheme::<P, K, V>::capacity(t))
    }
    fn recover(&mut self, pm: &mut P) {
        dispatch!(self, t => HashScheme::<P, K, V>::recover(t, pm))
    }
    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        dispatch!(self, t => HashScheme::<P, K, V>::check_consistency(t, pm))
    }
    fn instrumentation(&self) -> Option<&nvm_metrics::SchemeInstrumentation> {
        dispatch!(self, t => HashScheme::<P, K, V>::instrumentation(t))
    }
}

/// The shared tail of every `build_any` arm: allocate a fresh simulated
/// pool of `$size` bytes, run the scheme's `create` over the whole region,
/// and wrap the table in the matching [`AnyScheme`] variant. Adding scheme
/// N+1 is one `built!` entry (geometry + create call), not another copy of
/// the pool/region/expect plumbing.
macro_rules! built {
    ($variant:ident, $size:expr, $sim:expr, |$pm:ident, $region:ident| $create:expr) => {{
        let size = $size;
        let mut $pm = SimPmem::new(size, $sim);
        let $region = Region::new(0, size);
        let t = $create.expect(concat!(stringify!($variant), " create"));
        ($pm, AnyScheme::$variant(t))
    }};
}

/// Builds `kind` sized for a `total_cells` budget (a power of two) on a
/// fresh simulated pool. `group_size` applies to group hashing only.
pub fn build_any<K: HashKey, V: Pod>(
    kind: SchemeKind,
    total_cells: u64,
    seed: u64,
    sim: SimConfig,
    group_size: u64,
) -> (SimPmem, AnyScheme<SimPmem, K, V>) {
    assert!(total_cells.is_power_of_two(), "cell budget must be 2^k");
    match kind {
        SchemeKind::Linear | SchemeKind::LinearL => built!(
            Linear,
            LinearProbing::<SimPmem, K, V>::required_size(total_cells),
            sim,
            |pm, region| LinearProbing::create(&mut pm, region, total_cells, seed, kind.mode())
        ),
        SchemeKind::Pfht | SchemeKind::PfhtL => {
            let (buckets, stash) = Pfht::<SimPmem, K, V>::geometry_for(total_cells);
            built!(
                Pfht,
                Pfht::<SimPmem, K, V>::required_size(buckets, stash),
                sim,
                |pm, region| Pfht::create(&mut pm, region, buckets, stash, seed, kind.mode())
            )
        }
        SchemeKind::Path | SchemeKind::PathL => {
            let (leaf_bits, levels) = PathHash::<SimPmem, K, V>::geometry_for(total_cells);
            built!(
                Path,
                PathHash::<SimPmem, K, V>::required_size(leaf_bits, levels),
                sim,
                |pm, region| PathHash::create(&mut pm, region, leaf_bits, levels, seed, kind.mode())
            )
        }
        SchemeKind::Iceberg | SchemeKind::IcebergL => {
            let (l1, l2, yard) = Iceberg::<SimPmem, K, V>::geometry_for(total_cells);
            built!(
                Iceberg,
                Iceberg::<SimPmem, K, V>::required_size(l1, l2, yard),
                sim,
                |pm, region| Iceberg::create(
                    &mut pm,
                    region,
                    (l1, l2, yard),
                    seed,
                    kind.mode(),
                    MetaMode::On,
                )
            )
        }
        SchemeKind::Group | SchemeKind::Group2C => {
            let choice = if kind == SchemeKind::Group2C {
                ChoiceMode::TwoChoice
            } else {
                ChoiceMode::Single
            };
            let cfg = GroupHashConfig::new(total_cells / 2, group_size.min(total_cells / 2))
                .with_seed(seed)
                .with_choice(choice);
            built!(
                Group,
                GroupHash::<SimPmem, K, V>::required_size(&cfg),
                sim,
                |pm, region| GroupHash::create(&mut pm, region, cfg)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_build_and_roundtrip() {
        for kind in SchemeKind::ALL {
            let (mut pm, mut t) =
                build_any::<u64, u64>(kind, 1 << 10, 7, SimConfig::fast_test(), 64);
            if kind != SchemeKind::Group2C {
                assert_eq!(t.name(), kind.label());
            }
            for k in 0..200u64 {
                t.insert(&mut pm, k, k + 1).unwrap();
            }
            for k in 0..200u64 {
                assert_eq!(t.get(&pm, &k), Some(k + 1), "{kind:?} key {k}");
            }
            for k in 0..100u64 {
                assert!(t.remove(&mut pm, &k), "{kind:?} remove {k}");
            }
            assert_eq!(t.len(&pm), 100);
            t.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    /// The harness builds its scheme crates with `instrument`, so every
    /// scheme must surface probe/occupancy/displacement histograms, one
    /// probe sample per operation.
    #[test]
    fn every_scheme_records_instrumentation() {
        for kind in SchemeKind::ALL {
            let (mut pm, mut t) =
                build_any::<u64, u64>(kind, 1 << 10, 11, SimConfig::fast_test(), 64);
            for k in 0..100u64 {
                t.insert(&mut pm, k, k + 1).unwrap();
            }
            for k in 0..100u64 {
                assert!(t.get(&pm, &k).is_some());
            }
            let i = t.instrumentation().expect("instrument feature enabled");
            assert_eq!(i.probe.count(), 200, "{kind:?}: inserts + gets");
            assert_eq!(i.occupancy.count(), 100, "{kind:?}: one per insert");
            assert_eq!(i.displacement.count(), 100, "{kind:?}: one per insert");
        }
    }

    #[test]
    fn capacities_respect_budget() {
        for kind in SchemeKind::ALL {
            let (_pm, t) = build_any::<u64, u64>(kind, 1 << 12, 1, SimConfig::fast_test(), 256);
            let cap = t.capacity();
            // PFHT carries the paper's 3% extra stash on top of the budget.
            assert!(cap <= (1 << 12) + (1 << 12) * 3 / 100 + 1, "{kind:?}: {cap}");
            assert!(cap >= (1 << 12) * 9 / 10, "{kind:?} wastes budget: {cap}");
        }
    }

    #[test]
    fn wide_items_build() {
        for kind in [SchemeKind::Group, SchemeKind::PfhtL, SchemeKind::Iceberg] {
            let (mut pm, mut t) = build_any::<[u8; 16], [u8; 16]>(
                kind,
                1 << 8,
                2,
                SimConfig::fast_test(),
                64,
            );
            let k = [9u8; 16];
            t.insert(&mut pm, k, k).unwrap();
            assert_eq!(t.get(&pm, &k), Some(k));
        }
    }

    /// The stability property the iceberg scheme advertises, observed
    /// through the scheme-erased facade: a key's probe cost never changes
    /// as later keys pour in around it.
    #[test]
    fn iceberg_entries_stay_put_behind_the_facade() {
        let (mut pm, mut t) =
            build_any::<u64, u64>(SchemeKind::Iceberg, 1 << 9, 3, SimConfig::fast_test(), 64);
        for k in 0..64u64 {
            t.insert(&mut pm, k, k).unwrap();
        }
        for k in 64..400u64 {
            if t.insert(&mut pm, k, k).is_err() {
                break;
            }
        }
        for k in 0..64u64 {
            assert_eq!(t.get(&pm, &k), Some(k));
        }
        t.check_consistency(&pm).unwrap();
    }
}
