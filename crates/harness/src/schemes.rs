//! Unified construction and dispatch over the compared hashing schemes.

use group_hash::{ChoiceMode, GroupHash, GroupHashConfig};
use nvm_baselines::{LinearProbing, PathHash, Pfht};
use nvm_hashfn::{HashKey, Pod};
use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
use nvm_table::{BatchError, ConsistencyMode, HashScheme, InsertError, TableError};

/// The seven configurations compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    Linear,
    LinearL,
    Pfht,
    PfhtL,
    Path,
    PathL,
    Group,
    /// Extension (paper §4.4): group hashing with a second hash function.
    Group2C,
}

impl SchemeKind {
    /// Everything, bare baselines included (Figure 2's cast).
    pub const ALL: [SchemeKind; 8] = [
        SchemeKind::Linear,
        SchemeKind::LinearL,
        SchemeKind::Pfht,
        SchemeKind::PfhtL,
        SchemeKind::Path,
        SchemeKind::PathL,
        SchemeKind::Group,
        SchemeKind::Group2C,
    ];

    /// The consistent schemes compared in Figures 5–6 (logged baselines +
    /// group hashing).
    pub const CONSISTENT: [SchemeKind; 4] = [
        SchemeKind::LinearL,
        SchemeKind::PfhtL,
        SchemeKind::PathL,
        SchemeKind::Group,
    ];

    /// The schemes with a bounded space-utilization ratio (Figure 7;
    /// linear probing fills to 1.0 and is excluded by the paper).
    pub const BOUNDED_UTIL: [SchemeKind; 4] = [
        SchemeKind::Pfht,
        SchemeKind::Path,
        SchemeKind::Group,
        SchemeKind::Group2C,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Linear => "linear",
            SchemeKind::LinearL => "linear-L",
            SchemeKind::Pfht => "PFHT",
            SchemeKind::PfhtL => "PFHT-L",
            SchemeKind::Path => "path",
            SchemeKind::PathL => "path-L",
            SchemeKind::Group => "group",
            SchemeKind::Group2C => "group-2c",
        }
    }

    fn mode(self) -> ConsistencyMode {
        match self {
            SchemeKind::LinearL | SchemeKind::PfhtL | SchemeKind::PathL => {
                ConsistencyMode::UndoLog
            }
            _ => ConsistencyMode::None,
        }
    }
}

/// A scheme-erased persistent hash table (enum dispatch keeps everything
/// monomorphized and `HashScheme`'s `&mut P` signatures object-unsafe-free).
pub enum AnyScheme<P: Pmem, K: HashKey, V: Pod> {
    Linear(LinearProbing<P, K, V>),
    Pfht(Pfht<P, K, V>),
    Path(PathHash<P, K, V>),
    Group(GroupHash<P, K, V>),
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $e:expr) => {
        match $self {
            AnyScheme::Linear($t) => $e,
            AnyScheme::Pfht($t) => $e,
            AnyScheme::Path($t) => $e,
            AnyScheme::Group($t) => $e,
        }
    };
}

impl<P: Pmem, K: HashKey, V: Pod> HashScheme<P, K, V> for AnyScheme<P, K, V> {
    fn name(&self) -> &'static str {
        dispatch!(self, t => HashScheme::<P, K, V>::name(t))
    }
    fn insert(&mut self, pm: &mut P, key: K, value: V) -> Result<(), InsertError> {
        dispatch!(self, t => HashScheme::<P, K, V>::insert(t, pm, key, value))
    }
    fn insert_batch(&mut self, pm: &mut P, items: &[(K, V)]) -> Result<(), BatchError> {
        dispatch!(self, t => HashScheme::<P, K, V>::insert_batch(t, pm, items))
    }
    fn remove_batch(&mut self, pm: &mut P, keys: &[K]) -> usize {
        dispatch!(self, t => HashScheme::<P, K, V>::remove_batch(t, pm, keys))
    }
    fn get(&self, pm: &P, key: &K) -> Option<V> {
        dispatch!(self, t => HashScheme::<P, K, V>::get(t, pm, key))
    }
    fn remove(&mut self, pm: &mut P, key: &K) -> bool {
        dispatch!(self, t => HashScheme::<P, K, V>::remove(t, pm, key))
    }
    fn len(&self, pm: &P) -> u64 {
        dispatch!(self, t => HashScheme::<P, K, V>::len(t, pm))
    }
    fn capacity(&self) -> u64 {
        dispatch!(self, t => HashScheme::<P, K, V>::capacity(t))
    }
    fn recover(&mut self, pm: &mut P) {
        dispatch!(self, t => HashScheme::<P, K, V>::recover(t, pm))
    }
    fn check_consistency(&self, pm: &P) -> Result<(), TableError> {
        dispatch!(self, t => HashScheme::<P, K, V>::check_consistency(t, pm))
    }
    fn instrumentation(&self) -> Option<&nvm_metrics::SchemeInstrumentation> {
        dispatch!(self, t => HashScheme::<P, K, V>::instrumentation(t))
    }
}

/// Builds `kind` sized for a `total_cells` budget (a power of two) on a
/// fresh simulated pool. `group_size` applies to group hashing only.
pub fn build_any<K: HashKey, V: Pod>(
    kind: SchemeKind,
    total_cells: u64,
    seed: u64,
    sim: SimConfig,
    group_size: u64,
) -> (SimPmem, AnyScheme<SimPmem, K, V>) {
    assert!(total_cells.is_power_of_two(), "cell budget must be 2^k");
    match kind {
        SchemeKind::Linear | SchemeKind::LinearL => {
            let size = LinearProbing::<SimPmem, K, V>::required_size(total_cells);
            let mut pm = SimPmem::new(size, sim);
            let t = LinearProbing::create(
                &mut pm,
                Region::new(0, size),
                total_cells,
                seed,
                kind.mode(),
            )
            .expect("linear create");
            (pm, AnyScheme::Linear(t))
        }
        SchemeKind::Pfht | SchemeKind::PfhtL => {
            let (buckets, stash) = Pfht::<SimPmem, K, V>::geometry_for(total_cells);
            let size = Pfht::<SimPmem, K, V>::required_size(buckets, stash);
            let mut pm = SimPmem::new(size, sim);
            let t = Pfht::create(
                &mut pm,
                Region::new(0, size),
                buckets,
                stash,
                seed,
                kind.mode(),
            )
            .expect("pfht create");
            (pm, AnyScheme::Pfht(t))
        }
        SchemeKind::Path | SchemeKind::PathL => {
            let (leaf_bits, levels) = PathHash::<SimPmem, K, V>::geometry_for(total_cells);
            let size = PathHash::<SimPmem, K, V>::required_size(leaf_bits, levels);
            let mut pm = SimPmem::new(size, sim);
            let t = PathHash::create(
                &mut pm,
                Region::new(0, size),
                leaf_bits,
                levels,
                seed,
                kind.mode(),
            )
            .expect("path create");
            (pm, AnyScheme::Path(t))
        }
        SchemeKind::Group | SchemeKind::Group2C => {
            let choice = if kind == SchemeKind::Group2C {
                ChoiceMode::TwoChoice
            } else {
                ChoiceMode::Single
            };
            let cfg = GroupHashConfig::new(total_cells / 2, group_size.min(total_cells / 2))
                .with_seed(seed)
                .with_choice(choice);
            let size = GroupHash::<SimPmem, K, V>::required_size(&cfg);
            let mut pm = SimPmem::new(size, sim);
            let t = GroupHash::create(&mut pm, Region::new(0, size), cfg).expect("group create");
            (pm, AnyScheme::Group(t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_build_and_roundtrip() {
        for kind in SchemeKind::ALL {
            let (mut pm, mut t) =
                build_any::<u64, u64>(kind, 1 << 10, 7, SimConfig::fast_test(), 64);
            if kind != SchemeKind::Group2C {
                assert_eq!(t.name(), kind.label());
            }
            for k in 0..200u64 {
                t.insert(&mut pm, k, k + 1).unwrap();
            }
            for k in 0..200u64 {
                assert_eq!(t.get(&pm, &k), Some(k + 1), "{kind:?} key {k}");
            }
            for k in 0..100u64 {
                assert!(t.remove(&mut pm, &k), "{kind:?} remove {k}");
            }
            assert_eq!(t.len(&pm), 100);
            t.check_consistency(&pm)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
    }

    /// The harness builds its scheme crates with `instrument`, so every
    /// scheme must surface probe/occupancy/displacement histograms, one
    /// probe sample per operation.
    #[test]
    fn every_scheme_records_instrumentation() {
        for kind in SchemeKind::ALL {
            let (mut pm, mut t) =
                build_any::<u64, u64>(kind, 1 << 10, 11, SimConfig::fast_test(), 64);
            for k in 0..100u64 {
                t.insert(&mut pm, k, k + 1).unwrap();
            }
            for k in 0..100u64 {
                assert!(t.get(&pm, &k).is_some());
            }
            let i = t.instrumentation().expect("instrument feature enabled");
            assert_eq!(i.probe.count(), 200, "{kind:?}: inserts + gets");
            assert_eq!(i.occupancy.count(), 100, "{kind:?}: one per insert");
            assert_eq!(i.displacement.count(), 100, "{kind:?}: one per insert");
        }
    }

    #[test]
    fn capacities_respect_budget() {
        for kind in SchemeKind::ALL {
            let (_pm, t) = build_any::<u64, u64>(kind, 1 << 12, 1, SimConfig::fast_test(), 256);
            let cap = t.capacity();
            // PFHT carries the paper's 3% extra stash on top of the budget.
            assert!(cap <= (1 << 12) + (1 << 12) * 3 / 100 + 1, "{kind:?}: {cap}");
            assert!(cap >= (1 << 12) * 9 / 10, "{kind:?} wastes budget: {cap}");
        }
    }

    #[test]
    fn wide_items_build() {
        for kind in [SchemeKind::Group, SchemeKind::PfhtL] {
            let (mut pm, mut t) = build_any::<[u8; 16], [u8; 16]>(
                kind,
                1 << 8,
                2,
                SimConfig::fast_test(),
                64,
            );
            let k = [9u8; 16];
            t.insert(&mut pm, k, k).unwrap();
            assert_eq!(t.get(&pm, &k), Some(k));
        }
    }
}
