//! Concurrent read throughput: lock-free shard lookups under writer load.
use gh_harness::{experiments::concurrent, Args};

fn main() {
    let args = Args::parse();
    for t in concurrent::run(&args) {
        t.emit(args.out_dir.as_deref(), "concurrent");
    }
}
