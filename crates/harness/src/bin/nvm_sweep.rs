//! Extension experiment: NVM technology latency sweep.
use gh_harness::{experiments::nvm_sweep, Args};

fn main() {
    let args = Args::parse();
    for t in nvm_sweep::run(&args) {
        t.emit(args.out_dir.as_deref(), "nvm_sweep");
    }
}
