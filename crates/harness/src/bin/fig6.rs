//! Regenerates Figure 6 (L3 cache misses across traces and load factors).
use gh_harness::tablefmt::emit_json;
use gh_harness::{experiments::fig5, Args};

fn main() {
    let args = Args::parse();
    let runs = fig5::collect(&args);
    fig5::miss_table(&runs).emit(args.out_dir.as_deref(), "fig6_misses");
    emit_json(args.out_dir.as_deref(), "fig6", &fig5::metrics_json(&runs));
}
