//! Runs every experiment in sequence (Figures 2, 5, 6, 7, 8; Table 3).
use gh_harness::{experiments, Args};

fn main() {
    let args = Args::parse();
    let out = args.out_dir.as_deref();

    println!("# Group hashing reproduction — full experiment sweep\n");
    for (i, t) in experiments::fig2::run(&args).iter().enumerate() {
        t.emit(out, &format!("fig2_{i}"));
    }
    let runs = experiments::fig5::collect(&args);
    experiments::fig5::latency_table(&runs).emit(out, "fig5_latency");
    experiments::fig5::miss_table(&runs).emit(out, "fig6_misses");
    gh_harness::tablefmt::emit_json(out, "fig5", &experiments::fig5::metrics_json(&runs));
    for t in experiments::fig7::run(&args) {
        t.emit(out, "fig7_utilization");
    }
    for t in experiments::fig8::run(&args) {
        t.emit(out, "fig8_group_size");
    }
    for t in experiments::table3::run(&args) {
        t.emit(out, "table3_recovery");
    }
    for t in experiments::wear::run(&args) {
        t.emit(out, "wear");
    }
    for t in experiments::prefetch::run(&args) {
        t.emit(out, "prefetch_ablation");
    }
    for t in experiments::nvm_sweep::run(&args) {
        t.emit(out, "nvm_sweep");
    }
    for (t, name) in experiments::fingerprint::run(&args)
        .iter()
        .zip(["fingerprint", "fingerprint_summary"])
    {
        t.emit(out, name);
    }
    for (t, name) in experiments::batch::run(&args)
        .iter()
        .zip(["batch", "batch_summary"])
    {
        t.emit(out, name);
    }
    for t in experiments::concurrent::run(&args) {
        t.emit(out, "concurrent");
    }
    for t in experiments::multi_get::run(&args) {
        t.emit(out, "multi_get");
    }
    for (t, name) in experiments::heap::run(&args)
        .iter()
        .zip(["heap", "heap_recovery"])
    {
        t.emit(out, name);
    }
    for t in experiments::server::run(&args) {
        t.emit(out, "server");
    }
    for t in experiments::ycsb::run(&args) {
        t.emit(out, "ycsb");
    }
}
