//! Regenerates Table 3 (failure recovery time).
use gh_harness::{experiments::table3, Args};

fn main() {
    let args = Args::parse();
    for t in table3::run(&args) {
        t.emit(args.out_dir.as_deref(), "table3_recovery");
    }
}
