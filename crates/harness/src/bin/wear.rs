//! Extension experiment: NVM wear distribution per scheme.
use gh_harness::{experiments::wear, Args};

fn main() {
    let args = Args::parse();
    for t in wear::run(&args) {
        t.emit(args.out_dir.as_deref(), "wear");
    }
}
