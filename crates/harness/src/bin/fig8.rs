//! Regenerates Figure 8 (group size vs latency and utilization).
use gh_harness::{experiments::fig8, Args};

fn main() {
    let args = Args::parse();
    for t in fig8::run(&args) {
        t.emit(args.out_dir.as_deref(), "fig8_group_size");
    }
}
