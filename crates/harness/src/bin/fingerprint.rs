//! Extension experiment: DRAM fingerprint-cache read savings.
use gh_harness::{experiments::fingerprint, Args};

fn main() {
    let args = Args::parse();
    let names = ["fingerprint", "fingerprint_summary"];
    for (t, name) in fingerprint::run(&args).iter().zip(names) {
        t.emit(args.out_dir.as_deref(), name);
    }
}
