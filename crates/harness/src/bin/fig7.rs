//! Regenerates Figure 7 (space utilization ratios).
use gh_harness::{experiments::fig7, Args};

fn main() {
    let args = Args::parse();
    for t in fig7::run(&args) {
        t.emit(args.out_dir.as_deref(), "fig7_utilization");
    }
}
