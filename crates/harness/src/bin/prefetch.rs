//! Extension experiment: stream-prefetcher ablation.
use gh_harness::{experiments::prefetch, Args};

fn main() {
    let args = Args::parse();
    for t in prefetch::run(&args) {
        t.emit(args.out_dir.as_deref(), "prefetch_ablation");
    }
}
