//! Extension experiment: the nvm-server network front door under a
//! closed-loop multi-connection load — cross-connection group commit
//! vs per-op commits.
use gh_harness::{experiments::server, Args};

fn main() {
    let args = Args::parse();
    for t in server::run(&args) {
        t.emit(args.out_dir.as_deref(), "server");
    }
}
