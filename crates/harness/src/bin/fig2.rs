//! Regenerates Figure 2 (consistency cost of logging).
use gh_harness::{experiments::fig2, Args};

fn main() {
    let args = Args::parse();
    for (i, t) in fig2::run(&args).iter().enumerate() {
        t.emit(args.out_dir.as_deref(), &format!("fig2_{i}"));
    }
}
