//! Extension experiment: value-heap fragmentation, wear, and recovery.
use gh_harness::{experiments::heap, Args};

fn main() {
    let args = Args::parse();
    for (t, name) in heap::run(&args).iter().zip(["heap", "heap_recovery"]) {
        t.emit(args.out_dir.as_deref(), name);
    }
}
