//! Tentpole experiment: fence coalescing on the batched write path.
use gh_harness::{experiments::batch, Args};

fn main() {
    let args = Args::parse();
    let names = ["batch", "batch_summary"];
    for (t, name) in batch::run(&args).iter().zip(names) {
        t.emit(args.out_dir.as_deref(), name);
    }
}
