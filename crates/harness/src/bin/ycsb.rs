//! YCSB core mixes (A/B/C, uniform + Zipfian) over the five-scheme cast.
use gh_harness::{experiments, Args};

fn main() {
    let args = Args::parse();
    for t in experiments::ycsb::run(&args) {
        t.emit(args.out_dir.as_deref(), "ycsb");
    }
}
