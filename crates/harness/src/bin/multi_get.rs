//! Extension experiment: vectorized multi-get vs sequential gets.
use gh_harness::{experiments::multi_get, Args};

fn main() {
    let args = Args::parse();
    for t in multi_get::run(&args) {
        t.emit(args.out_dir.as_deref(), "multi_get");
    }
}
