//! Regenerates Figure 5 (request latency across traces and load factors).
use gh_harness::tablefmt::emit_json;
use gh_harness::{experiments::fig5, Args};

fn main() {
    let args = Args::parse();
    let runs = fig5::collect(&args);
    fig5::latency_table(&runs).emit(args.out_dir.as_deref(), "fig5_latency");
    emit_json(args.out_dir.as_deref(), "fig5", &fig5::metrics_json(&runs));
}
