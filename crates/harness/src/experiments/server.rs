//! Extension experiment — what does cross-connection group commit buy
//! the network front door?
//!
//! `nvm-server` never commits a client's `set` by itself: each worker
//! sweep stages every connection's writes into the store's shared
//! batch and pumps once, so the per-batch fence budget (2 for the heap
//! stage + K+2 for the index commit) is amortized over all K writes
//! that arrived during the sweep, across connections. The uncoalesced
//! baseline commits each op as it parses — the classic
//! one-commit-per-request server — and pays the full ~5 fences per
//! `set` (2 heap + 3 index).
//!
//! This experiment runs the real server (TCP loopback, worker sweeps
//! and all) under a closed-loop multi-connection load generator: each
//! connection pipelines bursts of 16 `set`s and waits for all acks
//! before the next burst, then runs a multi-`get` read phase. Swept
//! arms: 1/2/4/8 connections coalesced, plus 8 connections uncoalesced.
//! Acceptance: fences per set < 1.5 at ≥ 8 connections, vs ≥ 3 for the
//! uncoalesced arm.
//!
//! Output: `results/server.csv` (one row per arm) and
//! `results/server_metrics.json` (latency histograms, batch-size
//! distribution).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Instant;

use nvm_kv::prelude::*;
use nvm_metrics::Json;
use nvm_pmem::RealPmem;
use nvm_server::{serve, ServerConfig};

use crate::experiments::runner::experiment_json;
use crate::tablefmt::{count, emit_json, ratio, Table};
use crate::Args;

/// Pipelined writes in flight per connection per burst.
const BURST: usize = 16;
/// Bursts of sets per connection.
const SET_ROUNDS: usize = 48;
/// Multi-get commands per connection in the read phase.
const GET_ROUNDS: usize = 32;
/// Keys per multi-get.
const GET_FAN: usize = 8;
/// Distinct keys per connection (smaller than the write count, so the
/// workload mixes fresh inserts with in-place updates).
const KEYSPACE: u64 = 512;
/// Value payload bytes.
const VALUE_LEN: usize = 64;

/// One measured server arm.
#[derive(Debug, Clone)]
pub struct ArmResult {
    pub conns: usize,
    pub coalesced: bool,
    pub sets: u64,
    pub batches: u64,
    pub ops_per_batch: f64,
    pub fences_per_set: f64,
    pub set_p50_us: f64,
    pub set_p95_us: f64,
    pub set_p99_us: f64,
    pub get_p50_us: f64,
    pub get_p95_us: f64,
    pub get_p99_us: f64,
    pub sets_per_sec: f64,
    pub batch_size_json: Json,
    pub set_ns_json: Json,
    pub get_ns_json: Json,
}

pub fn run(args: &Args) -> Vec<Table> {
    let arms = [
        (1usize, true),
        (2, true),
        (4, true),
        (8, true),
        (8, false),
    ];
    let mut results = Vec::new();
    for (conns, coalesced) in arms {
        results.push(run_arm(conns, coalesced));
    }

    let mut table = Table::new(
        "nvm-server: cross-connection group commit (closed-loop loopback clients)",
        &[
            "conns",
            "commit",
            "sets",
            "batches",
            "ops/batch",
            "fences/set",
            "set p50 us",
            "set p95 us",
            "set p99 us",
            "get p50 us",
            "kops/s",
        ],
    );
    for r in &results {
        table.row(vec![
            r.conns.to_string(),
            if r.coalesced { "grouped" } else { "per-op" }.to_string(),
            count(r.sets as f64),
            count(r.batches as f64),
            ratio(r.ops_per_batch),
            format!("{:.3}", r.fences_per_set),
            format!("{:.1}", r.set_p50_us),
            format!("{:.1}", r.set_p95_us),
            format!("{:.1}", r.set_p99_us),
            format!("{:.1}", r.get_p50_us),
            count(r.sets_per_sec / 1000.0),
        ]);
    }
    println!("{}", table.render());

    emit_json(args.out_dir.as_deref(), "server", &metrics_json(&results));
    vec![table]
}

pub fn metrics_json(results: &[ArmResult]) -> Json {
    let runs = results
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("conns", r.conns as u64)
                .insert("coalesced", r.coalesced)
                .insert("sets", r.sets)
                .insert("batches", r.batches)
                .insert("ops_per_batch", r.ops_per_batch)
                .insert("fences_per_set", r.fences_per_set)
                .insert("set_p50_us", r.set_p50_us)
                .insert("set_p95_us", r.set_p95_us)
                .insert("set_p99_us", r.set_p99_us)
                .insert("get_p50_us", r.get_p50_us)
                .insert("get_p95_us", r.get_p95_us)
                .insert("get_p99_us", r.get_p99_us)
                .insert("sets_per_sec", r.sets_per_sec)
                .insert("batch_size_hist", r.batch_size_json.clone())
                .insert("set_ns_hist", r.set_ns_json.clone())
                .insert("get_ns_hist", r.get_ns_json.clone());
            j
        })
        .collect();
    experiment_json("server", runs)
}

fn run_arm(conns: usize, coalesced: bool) -> ArmResult {
    // Zero extra write latency: the figure of merit is fences and
    // batching, not simulated NVM stalls, and wall-clock percentiles
    // should reflect the server's own path.
    let store = StoreBuilder::new()
        .capacity(64 * KEYSPACE, VALUE_LEN as u64)
        .shards(1)
        .create_with(|_, size| RealPmem::with_write_latency(size, 0))
        .expect("create server store");
    let probe = store.clone();
    let handle = serve(
        store,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            coalesce: coalesced,
        },
    )
    .expect("serve");

    // Count only workload fences: drop creation/warm-up costs.
    probe.reset_pmem_stats();
    let started = Instant::now();
    let addr = handle.addr();
    let clients: Vec<_> = (0..conns)
        .map(|c| thread::spawn(move || client(addr, c)))
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    let wall = started.elapsed().as_secs_f64();

    let counters = probe.counters();
    let pm = probe.pmem_stats();
    let bs = probe.batch_size_histogram();
    let stats = handle.stats();
    let result = ArmResult {
        conns,
        coalesced,
        sets: counters.sets,
        batches: counters.batches,
        ops_per_batch: counters.sets as f64 / counters.batches.max(1) as f64,
        fences_per_set: pm.fences as f64 / counters.sets.max(1) as f64,
        set_p50_us: stats.set_ns.p50() / 1000.0,
        set_p95_us: stats.set_ns.p95() / 1000.0,
        set_p99_us: stats.set_ns.p99() / 1000.0,
        get_p50_us: stats.get_ns.p50() / 1000.0,
        get_p95_us: stats.get_ns.p95() / 1000.0,
        get_p99_us: stats.get_ns.p99() / 1000.0,
        sets_per_sec: counters.sets as f64 / wall.max(1e-9),
        batch_size_json: bs.to_json(),
        set_ns_json: stats.set_ns.to_json(),
        get_ns_json: stats.get_ns.to_json(),
    };
    handle.shutdown();
    result
}

/// One closed-loop connection: pipelined set bursts, then multi-gets.
fn client(addr: SocketAddr, conn_id: usize) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).expect("nodelay");
    let value = vec![b'v'; VALUE_LEN];
    let mut wire = Vec::new();
    let mut reply = vec![0u8; 64 * 1024];
    let mut k = 0u64;

    for _ in 0..SET_ROUNDS {
        wire.clear();
        for _ in 0..BURST {
            wire.extend_from_slice(
                format!("set c{conn_id}:{} 0 0 {VALUE_LEN}\r\n", k % KEYSPACE).as_bytes(),
            );
            k += 1;
            wire.extend_from_slice(&value);
            wire.extend_from_slice(b"\r\n");
        }
        s.write_all(&wire).expect("burst write");
        // Every reply is one line ("STORED"): count newlines back.
        let mut acks = 0usize;
        while acks < BURST {
            let n = s.read(&mut reply).expect("burst read");
            assert!(n > 0, "server closed mid-burst");
            acks += reply[..n].iter().filter(|&&b| b == b'\n').count();
        }
    }

    let mut got = Vec::new();
    for round in 0..GET_ROUNDS {
        wire.clear();
        wire.extend_from_slice(b"get");
        for i in 0..GET_FAN {
            wire.extend_from_slice(
                format!(" c{conn_id}:{}", (round * GET_FAN + i) as u64 % KEYSPACE).as_bytes(),
            );
        }
        wire.extend_from_slice(b"\r\n");
        s.write_all(&wire).expect("get write");
        got.clear();
        while !got.ends_with(b"END\r\n") {
            let n = s.read(&mut reply).expect("get read");
            assert!(n > 0, "server closed mid-get");
            got.extend_from_slice(&reply[..n]);
        }
        assert!(got.windows(6).filter(|w| w == b"VALUE ").count() == GET_FAN);
    }

    s.write_all(b"quit\r\n").expect("quit");
    let _ = s.read(&mut reply);
}
