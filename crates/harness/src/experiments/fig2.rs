//! Figure 2 — the consistency cost of logging (paper §2.3).
//!
//! RandomNum trace, load factor 0.5. Linear probing, PFHT, and path
//! hashing each run bare and with undo logging; the paper reports that
//! the logged versions are ≈1.95× slower on insert+delete (Fig 2a) and
//! take ≈2.16× more L3 misses (Fig 2b).

use crate::experiments::runner::{experiment_json, run_json, run_workload};
use crate::tablefmt::{count, emit_json, ns, ratio, Table};
use crate::{Args, SchemeKind, TraceKind};
use nvm_metrics::Json;
use nvm_table::OpKind;
use nvm_traces::WorkloadReport;

/// The (bare, logged) pairs of Figure 2.
const PAIRS: [(SchemeKind, SchemeKind); 3] = [
    (SchemeKind::Linear, SchemeKind::LinearL),
    (SchemeKind::Pfht, SchemeKind::PfhtL),
    (SchemeKind::Path, SchemeKind::PathL),
];

/// Raw reports for all six configurations.
pub fn collect(args: &Args) -> Vec<WorkloadReport> {
    let cells = args.cells_for(TraceKind::RandomNum);
    PAIRS
        .iter()
        .flat_map(|&(bare, logged)| [bare, logged])
        .map(|kind| {
            run_workload(
                kind,
                TraceKind::RandomNum,
                cells,
                0.5,
                args.ops,
                args.seed,
                args.group_size,
            )
        })
        .collect()
}

/// The experiment's JSON metrics document: one entry per configuration,
/// each with the shared-schema `metrics` block.
pub fn metrics_json(reports: &[WorkloadReport]) -> Json {
    experiment_json("fig2", reports.iter().map(|r| run_json(r, &[])).collect())
}

/// Builds the Fig 2(a) latency table, Fig 2(b) miss table, and the
/// logged/bare ratio summary.
pub fn run(args: &Args) -> Vec<Table> {
    let reports = collect(args);
    emit_json(args.out_dir.as_deref(), "fig2", &metrics_json(&reports));

    let mut lat = Table::new(
        "Figure 2(a): request latency, RandomNum @ LF 0.5 (ns/op, simulated)",
        &["scheme", "insert", "query", "delete"],
    );
    let mut miss = Table::new(
        "Figure 2(b): L3 cache misses per request, RandomNum @ LF 0.5",
        &["scheme", "insert", "query", "delete"],
    );
    for r in &reports {
        lat.row(vec![
            r.scheme.clone(),
            ns(r.insert.avg_ns()),
            ns(r.query.avg_ns()),
            ns(r.delete.avg_ns()),
        ]);
        miss.row(vec![
            r.scheme.clone(),
            count(r.insert.avg_llc_misses()),
            count(r.query.avg_llc_misses()),
            count(r.delete.avg_llc_misses()),
        ]);
    }

    let mut ratios = Table::new(
        "Figure 2 summary: logged vs bare on insert+delete (paper: 1.95x latency, 2.16x misses)",
        &["pair", "latency ratio", "L3 miss ratio"],
    );
    let mut lat_sum = 0.0;
    let mut miss_sum = 0.0;
    for (i, &(bare, _)) in PAIRS.iter().enumerate() {
        let b = &reports[2 * i];
        let l = &reports[2 * i + 1];
        let upd = |r: &WorkloadReport, f: fn(&WorkloadReport, OpKind) -> f64| {
            (f(r, OpKind::Insert) + f(r, OpKind::Delete)) / 2.0
        };
        let lat_ratio = upd(l, |r, k| r.of(k).avg_ns()) / upd(b, |r, k| r.of(k).avg_ns());
        let miss_ratio = upd(l, |r, k| r.of(k).avg_llc_misses())
            / upd(b, |r, k| r.of(k).avg_llc_misses()).max(1e-9);
        lat_sum += lat_ratio;
        miss_sum += miss_ratio;
        ratios.row(vec![
            format!("{} vs -L", bare.label()),
            ratio(lat_ratio),
            ratio(miss_ratio),
        ]);
    }
    ratios.row(vec![
        "mean".into(),
        ratio(lat_sum / PAIRS.len() as f64),
        ratio(miss_sum / PAIRS.len() as f64),
    ]);

    vec![lat, miss, ratios]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args {
            cells_log2: Some(10),
            ops: 60,
            ..Args::default()
        }
    }

    #[test]
    fn logging_slows_updates() {
        let reports = collect(&tiny_args());
        assert_eq!(reports.len(), 6);
        for i in 0..3 {
            let bare = &reports[2 * i];
            let logged = &reports[2 * i + 1];
            let b = bare.insert.avg_ns() + bare.delete.avg_ns();
            let l = logged.insert.avg_ns() + logged.delete.avg_ns();
            assert!(
                l > 1.4 * b,
                "{}: logged {l:.0}ns vs bare {b:.0}ns",
                bare.scheme
            );
            // Queries don't write; logging must not slow them much.
            assert!(logged.query.avg_ns() < 1.3 * bare.query.avg_ns() + 50.0);
        }
    }

    #[test]
    fn tables_have_expected_shape() {
        let tables = run(&tiny_args());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 6);
        assert_eq!(tables[2].len(), 4); // 3 pairs + mean
    }
}
