//! Figure 7 — space utilization ratios.
//!
//! Utilization = the load factor at the first failed insert. The paper
//! reports path ≈ highest, PFHT slightly lower, group ≈ 82 % (a deliberate
//! trade: one hash function and contiguous groups buy cache efficiency at
//! some utilization cost). Linear probing is excluded — it fills to 1.0.

use crate::experiments::runner::{experiment_json, utilization};
use crate::tablefmt::{emit_json, percent, Table};
use crate::{Args, SchemeKind, TraceKind};
use nvm_metrics::Json;

/// Measured utilization for every (scheme, trace) pair of the figure.
pub fn collect(args: &Args) -> Vec<(SchemeKind, TraceKind, f64)> {
    let mut out = Vec::new();
    for kind in SchemeKind::BOUNDED_UTIL {
        for trace in TraceKind::ALL {
            let cells = args.cells_for(trace);
            out.push((
                kind,
                trace,
                utilization(kind, trace, cells, args.seed, args.group_size),
            ));
        }
    }
    out
}

/// The experiment's JSON metrics document. Figure 7 measures a single
/// scalar per (scheme, trace), so the `metrics` block is just the
/// utilization ratio.
pub fn metrics_json(data: &[(SchemeKind, TraceKind, f64)]) -> Json {
    let runs = data
        .iter()
        .map(|&(kind, trace, u)| {
            let mut j = Json::obj();
            j.insert("scheme", kind.label());
            j.insert("trace", trace.label());
            let mut m = Json::obj();
            m.insert("utilization", u);
            j.insert("metrics", m);
            j
        })
        .collect();
    experiment_json("fig7", runs)
}

/// Builds the Figure 7 table (schemes × traces).
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "fig7", &metrics_json(&data));
    let mut t = Table::new(
        "Figure 7: space utilization ratio (load factor at first failed insert)",
        &["scheme", "RandomNum", "Bag-of-Words", "Fingerprint"],
    );
    // Note: "iceberg" and "group-2c" are this reproduction's extension
    // rows (ROADMAP / paper §4.4); the paper's Figure 7 has only the
    // other three schemes.
    for kind in SchemeKind::BOUNDED_UTIL {
        let row: Vec<f64> = TraceKind::ALL
            .iter()
            .map(|&tr| {
                data.iter()
                    .find(|(k, t, _)| *k == kind && *t == tr)
                    .map(|&(_, _, u)| u)
                    .expect("collected")
            })
            .collect();
        t.row(vec![
            kind.label().into(),
            percent(row[0]),
            percent(row[1]),
            percent(row[2]),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's ordering: path ≥ PFHT > group ≈ 0.82.
    #[test]
    fn utilization_ordering_matches_paper() {
        let cells = 1 << 12;
        let path = utilization(SchemeKind::Path, TraceKind::RandomNum, cells, 7, 256);
        let pfht = utilization(SchemeKind::Pfht, TraceKind::RandomNum, cells, 7, 256);
        let group = utilization(SchemeKind::Group, TraceKind::RandomNum, cells, 7, 256);
        assert!(path > group, "path {path:.3} vs group {group:.3}");
        assert!(pfht > group, "pfht {pfht:.3} vs group {group:.3}");
        assert!(
            (0.70..0.95).contains(&group),
            "group utilization {group:.3} (paper: ~0.82)"
        );
    }

    #[test]
    fn table_shape() {
        let tables = run(&Args {
            cells_log2: Some(10),
            ..Args::default()
        });
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 5); // 3 paper schemes + iceberg + group-2c
    }

    /// The §4.4 extension: two hash choices must raise group hashing's
    /// utilization.
    #[test]
    fn two_choice_raises_utilization() {
        let cells = 1 << 12;
        let single = utilization(SchemeKind::Group, TraceKind::RandomNum, cells, 7, 256);
        let double = utilization(SchemeKind::Group2C, TraceKind::RandomNum, cells, 7, 256);
        assert!(
            double > single,
            "two-choice {double:.3} vs single {single:.3}"
        );
    }
}
