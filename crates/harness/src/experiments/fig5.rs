//! Figures 5 and 6 — request latency and L3 misses for the consistent
//! schemes (linear-L, PFHT-L, path-L, group) across the three traces and
//! load factors 0.5 / 0.75.
//!
//! One collection pass feeds both figures: a workload run yields latency
//! (Fig 5) and miss counts (Fig 6) simultaneously.

use crate::experiments::runner::{experiment_json, run_json, run_workload};
use crate::tablefmt::{count, emit_json, ns, Table};
use crate::{Args, SchemeKind, TraceKind};
use nvm_metrics::Json;
use nvm_traces::WorkloadReport;

/// Load factors evaluated by the paper.
pub const LOAD_FACTORS: [f64; 2] = [0.5, 0.75];

/// All (trace, load factor, report) runs.
pub fn collect(args: &Args) -> Vec<(TraceKind, f64, WorkloadReport)> {
    let mut out = Vec::new();
    for trace in TraceKind::ALL {
        let cells = args.cells_for(trace);
        for lf in LOAD_FACTORS {
            for kind in SchemeKind::CONSISTENT {
                let t0 = std::time::Instant::now();
                let r = run_workload(kind, trace, cells, lf, args.ops, args.seed, args.group_size);
                if std::env::var_os("GH_TRACE_TIMING").is_some() {
                    eprintln!(
                        "[fig5] {:?} lf={lf} {:?}: {:.2?}",
                        trace,
                        kind,
                        t0.elapsed()
                    );
                }
                out.push((trace, lf, r));
            }
        }
    }
    out
}

/// The Figures 5/6 JSON metrics document: one entry per (trace, load
/// factor, scheme) run, each with the shared-schema `metrics` block —
/// flush/fence counters, per-op latency histograms, and (for every
/// scheme, group hashing and baselines alike) the probe-length
/// histogram.
pub fn metrics_json(runs: &[(TraceKind, f64, WorkloadReport)]) -> Json {
    experiment_json(
        "fig5",
        runs.iter()
            .map(|(_, lf, r)| run_json(r, &[("target_load_factor", Json::from(*lf))]))
            .collect(),
    )
}

/// Formats the collected runs as the Figure 5 (latency) table.
pub fn latency_table(runs: &[(TraceKind, f64, WorkloadReport)]) -> Table {
    let mut t = Table::new(
        "Figure 5: average request latency (ns/op, simulated)",
        &["trace", "LF", "scheme", "insert", "query", "delete"],
    );
    for (trace, lf, r) in runs {
        t.row(vec![
            trace.label().into(),
            format!("{lf}"),
            r.scheme.clone(),
            ns(r.insert.avg_ns()),
            ns(r.query.avg_ns()),
            ns(r.delete.avg_ns()),
        ]);
    }
    t
}

/// Formats the collected runs as the Figure 6 (L3 misses) table.
pub fn miss_table(runs: &[(TraceKind, f64, WorkloadReport)]) -> Table {
    let mut t = Table::new(
        "Figure 6: average L3 cache misses per request",
        &["trace", "LF", "scheme", "insert", "query", "delete"],
    );
    for (trace, lf, r) in runs {
        t.row(vec![
            trace.label().into(),
            format!("{lf}"),
            r.scheme.clone(),
            count(r.insert.avg_llc_misses()),
            count(r.query.avg_llc_misses()),
            count(r.delete.avg_llc_misses()),
        ]);
    }
    t
}

/// Runs the experiment and returns both figures' tables.
pub fn run(args: &Args) -> Vec<Table> {
    let runs = collect(args);
    emit_json(args.out_dir.as_deref(), "fig5", &metrics_json(&runs));
    vec![latency_table(&runs), miss_table(&runs)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvm_table::OpKind;

    fn tiny_args() -> Args {
        Args {
            cells_log2: Some(10),
            ops: 60,
            ..Args::default()
        }
    }

    /// The paper's headline, stated at the strength the model supports:
    /// group hashing beats every logged baseline on the write paths
    /// (insert, delete — where the 8-byte commit replaces duplicate-copy
    /// logging), beats the two-function schemes (PFHT-L, path-L) on
    /// queries too, and stays within a small factor of linear probing's
    /// query (queries never log, and a 1.5-probe linear chain is the
    /// locality optimum; the paper's Fig. 5 shows the two close as well).
    #[test]
    fn group_wins_on_randomnum() {
        let args = tiny_args();
        let cells = args.cells_for(TraceKind::RandomNum);
        let mut by_scheme = std::collections::HashMap::new();
        for kind in SchemeKind::CONSISTENT {
            let r = run_workload(kind, TraceKind::RandomNum, cells, 0.5, 80, 3, 64);
            by_scheme.insert(kind, r);
        }
        let group = &by_scheme[&SchemeKind::Group];
        for kind in [SchemeKind::LinearL, SchemeKind::PfhtL, SchemeKind::PathL] {
            let other = &by_scheme[&kind];
            // Writes: the 8-byte commit must clearly beat duplicate-copy
            // logging (at realistic scale the gap is ~3x; demand >1.5x
            // even at this tiny test size).
            for op in [OpKind::Insert, OpKind::Delete] {
                assert!(
                    group.of(op).avg_ns() * 1.5 <= other.of(op).avg_ns(),
                    "group {:?} {:.0}ns vs {} {:.0}ns",
                    op,
                    group.of(op).avg_ns(),
                    other.scheme,
                    other.of(op).avg_ns()
                );
            }
            // Queries never log; all schemes are close. Group must stay
            // within 2x of every baseline (its group scan vs their 1-2
            // line probes).
            assert!(
                group.query.avg_ns() <= other.query.avg_ns() * 2.0,
                "group query {:.0}ns vs {} {:.0}ns",
                group.query.avg_ns(),
                other.scheme,
                other.query.avg_ns()
            );
        }
    }

    /// The metrics document carries flush/fence counters and a
    /// probe-length histogram for group hashing *and* the baselines,
    /// under one shared schema (same section keys for every scheme).
    #[test]
    fn metrics_block_shares_schema_across_schemes() {
        let runs = collect(&Args {
            cells_log2: Some(9),
            ops: 20,
            ..Args::default()
        });
        let doc = metrics_json(&runs);
        let entries = match doc.get("runs").unwrap() {
            Json::Arr(v) => v,
            other => panic!("runs must be an array, got {other:?}"),
        };
        assert_eq!(entries.len(), runs.len());
        let find = |name: &str| {
            entries
                .iter()
                .find(|e| matches!(e.get("scheme"), Some(Json::Str(s)) if s == name))
                .unwrap_or_else(|| panic!("no {name} run"))
        };
        let section_keys = |e: &Json| match e.get("metrics").unwrap() {
            Json::Obj(m) => m.keys().cloned().collect::<Vec<_>>(),
            other => panic!("metrics must be an object, got {other:?}"),
        };
        let group = find("group");
        let linear = find("linear-L");
        assert_eq!(section_keys(group), section_keys(linear));
        for e in [group, linear] {
            let m = e.get("metrics").unwrap();
            let pmem = m.get("pmem").unwrap();
            assert!(pmem.get("flushes").and_then(Json::as_u64).unwrap() > 0);
            assert!(pmem.get("fences").and_then(Json::as_u64).unwrap() > 0);
            let probe = m.get("scheme").unwrap().get("probe").unwrap();
            assert!(probe.get("count").and_then(Json::as_u64).unwrap() > 0);
            let lat = m.get("latency").unwrap().get("insert").unwrap();
            assert_eq!(lat.get("count").and_then(Json::as_u64), Some(20));
        }
    }

    #[test]
    fn tables_cover_all_cells() {
        let runs = collect(&Args {
            cells_log2: Some(9),
            ops: 20,
            ..Args::default()
        });
        assert_eq!(runs.len(), 3 * 2 * 4);
        assert_eq!(latency_table(&runs).len(), 24);
        assert_eq!(miss_table(&runs).len(), 24);
    }
}
