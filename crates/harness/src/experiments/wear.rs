//! Extension experiment — NVM wear distribution.
//!
//! The paper motivates write reduction with NVM's limited endurance
//! (§2.1, Table 1) but never measures *where* the writes land. This
//! experiment does: each scheme runs an insert/delete churn at load factor
//! 0.5 while the simulator counts media write-backs per cacheline. Two
//! effects appear:
//!
//! 1. logged variants write back ~2× the lines of their bare versions
//!    (duplicate copies), and
//! 2. the undo log's header line is rewritten by *every* transaction — a
//!    single line absorbs thousands of write-backs, exactly the hotspot a
//!    wear-leveling layer would have to rotate away. Group hashing's
//!    hottest line (the `count` word) is the same order, but its total
//!    write volume is the lowest.

use crate::experiments::runner::experiment_json;
use crate::schemes::{build_any, SchemeKind};
use crate::tablefmt::{count, emit_json, Table};
use crate::{Args, TraceKind};
use nvm_metrics::Json;
use nvm_pmem::SimConfig;
use nvm_table::HashScheme;
use nvm_traces::{RandomNum, Trace, Workload};

/// Wear measurements for one scheme.
#[derive(Debug, Clone)]
pub struct WearRow {
    pub scheme: String,
    /// Total media write-backs during the churn phase.
    pub total_writebacks: u64,
    /// Write-backs absorbed by the single hottest line.
    pub max_line: u32,
    /// Hottest line / mean worn line.
    pub skew: f64,
}

/// Runs the churn and captures wear for every scheme.
pub fn collect(args: &Args) -> Vec<WearRow> {
    let cells = args.cells_for(TraceKind::RandomNum);
    let churn = args.ops * 10;
    SchemeKind::ALL
        .iter()
        .map(|&kind| {
            let (mut pm, mut table) =
                build_any::<u64, u64>(kind, cells, args.seed, SimConfig::paper_default(), args.group_size);
            let mut trace = RandomNum::new(args.seed);
            let w = Workload {
                load_factor: 0.5,
                ops: 0,
            };
            w.fill(&mut pm, &mut table, &mut trace, |&k| k);
            pm.reset_wear();
            // Churn: insert a fresh key, delete it, repeat — the paper's
            // write-heavy steady state.
            let fresh = trace.take_keys(churn);
            for k in &fresh {
                table.insert(&mut pm, *k, *k).unwrap();
                assert!(table.remove(&mut pm, k));
            }
            let (total, max, mean) = pm.wear_summary();
            WearRow {
                scheme: kind.label().to_string(),
                total_writebacks: total,
                max_line: max,
                skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
            }
        })
        .collect()
}

/// The experiment's JSON metrics document: write-back totals and the
/// hottest-line skew per scheme.
pub fn metrics_json(rows: &[WearRow]) -> Json {
    let runs = rows
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("scheme", r.scheme.as_str());
            let mut m = Json::obj();
            m.insert("total_writebacks", r.total_writebacks);
            m.insert("hottest_line_writebacks", u64::from(r.max_line));
            m.insert("max_over_mean_skew", r.skew);
            j.insert("metrics", m);
            j
        })
        .collect();
    experiment_json("wear", runs)
}

/// Builds the wear table.
pub fn run(args: &Args) -> Vec<Table> {
    let rows = collect(args);
    emit_json(args.out_dir.as_deref(), "wear", &metrics_json(&rows));
    let mut t = Table::new(
        format!(
            "Extension: NVM wear during {} insert+delete churn ops, RandomNum @ LF 0.5",
            args.ops * 10 * 2
        ),
        &["scheme", "total write-backs", "hottest line", "max/mean skew"],
    );
    for r in &rows {
        t.row(vec![
            r.scheme.clone(),
            r.total_writebacks.to_string(),
            r.max_line.to_string(),
            count(r.skew),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<WearRow> {
        collect(&Args {
            cells_log2: Some(10),
            ops: 30,
            ..Args::default()
        })
    }

    /// Logging roughly doubles total write-backs (the paper's
    /// write-efficiency argument, restated in endurance terms).
    #[test]
    fn logged_variants_wear_more() {
        let rows = rows();
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.scheme == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .total_writebacks
        };
        for (bare, logged) in [("linear", "linear-L"), ("PFHT", "PFHT-L"), ("path", "path-L")] {
            assert!(
                get(logged) as f64 > 1.5 * get(bare) as f64,
                "{logged} {} vs {bare} {}",
                get(logged),
                get(bare)
            );
        }
        // Group hashing's write volume is at the bare (unlogged) level,
        // not the logged level.
        assert!(get("group") < get("linear-L"));
    }

    /// The undo-log status line is a wear hotspot: logged variants have a
    /// much hotter hottest-line than group hashing's total volume would
    /// suggest.
    #[test]
    fn log_header_is_a_hotspot() {
        let rows = rows();
        let get = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
        // Every logged tx rewrites the status/count lines: the hottest
        // line absorbs at least one write-back per churn op.
        assert!(get("linear-L").max_line as u64 >= 2 * 30 * 10 / 2);
    }
}
