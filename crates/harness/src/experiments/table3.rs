//! Table 3 — failure recovery time.
//!
//! The paper builds group-hash tables of 128 MB–1 GB, fills them to load
//! factor 0.5, and compares Algorithm 4's recovery time with the build
//! time: recovery is ≈0.93 % of the build, independent of size. We sweep
//! scaled-down sizes by default (`--full` restores the paper's), and add
//! an iceberg row: its recovery additionally rebuilds the volatile
//! fingerprint words, so it bounds what "volatile metadata is free to
//! lose" costs on restart.

use crate::experiments::runner::experiment_json;
use crate::schemes::{build_any, SchemeKind};
use crate::tablefmt::{emit_json, percent, Table};
use crate::Args;
use nvm_metrics::Json;
use nvm_pmem::{Pmem, SimConfig};
use nvm_table::HashScheme;
use nvm_traces::{RandomNum, Workload};

/// The schemes whose recovery the table reports: the paper's (group) and
/// the one with volatile state to rebuild (iceberg).
pub const CAST: [SchemeKind; 2] = [SchemeKind::Group, SchemeKind::Iceberg];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPoint {
    pub scheme: SchemeKind,
    pub table_mb: u64,
    pub build_ns: u64,
    pub recovery_ns: u64,
}

impl RecoveryPoint {
    pub fn percentage(&self) -> f64 {
        self.recovery_ns as f64 / self.build_ns as f64
    }
}

/// Table sizes in MB for the sweep.
pub fn sizes_mb(args: &Args) -> Vec<u64> {
    if args.full {
        vec![128, 256, 512, 1024]
    } else {
        vec![4, 8, 16, 32]
    }
}

/// Measures one sweep point: `table_mb` MB of 16-byte cells.
pub fn measure(kind: SchemeKind, table_mb: u64, ops_seed: u64, group_size: u64) -> RecoveryPoint {
    // The paper sizes tables by cell bytes: 16-byte items.
    measure_cells(kind, (table_mb << 20) / 16, table_mb, ops_seed, group_size)
}

/// Measures a sweep point with an explicit cell budget (tests use small
/// budgets; the binary uses MB-scale ones).
pub fn measure_cells(
    kind: SchemeKind,
    total_cells: u64,
    table_mb: u64,
    ops_seed: u64,
    group_size: u64,
) -> RecoveryPoint {
    assert!(total_cells.is_power_of_two());
    let (mut pm, mut table) = build_any::<u64, u64>(
        kind,
        total_cells,
        ops_seed,
        SimConfig::paper_default(),
        group_size,
    );

    let mut trace = RandomNum::with_bound(ops_seed, (total_cells * 8).max(1 << 26));
    pm.reset_stats();
    let t0 = pm.sim_time_ns().unwrap();
    Workload {
        load_factor: 0.5,
        ops: 0,
    }
    .fill(&mut pm, &mut table, &mut trace, |&k| k ^ 0x5A5A);
    let build_ns = pm.sim_time_ns().unwrap() - t0;

    let t1 = pm.sim_time_ns().unwrap();
    table.recover(&mut pm);
    let recovery_ns = pm.sim_time_ns().unwrap() - t1;

    RecoveryPoint {
        scheme: kind,
        table_mb,
        build_ns,
        recovery_ns,
    }
}

/// The experiment's JSON metrics document: build/recovery simulated
/// times per sweep point.
pub fn metrics_json(points: &[RecoveryPoint]) -> Json {
    let runs = points
        .iter()
        .map(|p| {
            let mut j = Json::obj();
            j.insert("scheme", p.scheme.label());
            j.insert("table_mb", p.table_mb);
            let mut m = Json::obj();
            m.insert("build_ns", p.build_ns);
            m.insert("recovery_ns", p.recovery_ns);
            m.insert("recovery_fraction", p.percentage());
            j.insert("metrics", m);
            j
        })
        .collect();
    experiment_json("table3", runs)
}

/// Builds the Table 3 equivalent.
pub fn run(args: &Args) -> Vec<Table> {
    let points: Vec<RecoveryPoint> = CAST
        .iter()
        .flat_map(|&kind| {
            sizes_mb(args)
                .into_iter()
                .map(move |mb| (kind, mb))
        })
        .map(|(kind, mb)| measure(kind, mb, args.seed, args.group_size))
        .collect();
    emit_json(args.out_dir.as_deref(), "table3", &metrics_json(&points));
    let mut t = Table::new(
        "Table 3: recovery time vs execution (build to LF 0.5) time, RandomNum",
        &[
            "scheme",
            "table size",
            "recovery (ms)",
            "execution (ms)",
            "percentage",
        ],
    );
    for p in &points {
        t.row(vec![
            p.scheme.label().into(),
            format!("{}MB", p.table_mb),
            format!("{:.1}", p.recovery_ns as f64 / 1e6),
            format!("{:.1}", p.build_ns as f64 / 1e6),
            percent(p.percentage()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_is_small_fraction_of_build() {
        for kind in CAST {
            let p = measure_cells(kind, 1 << 12, 0, 3, 256);
            assert!(p.build_ns > 0 && p.recovery_ns > 0, "{kind:?}");
            let pct = p.percentage();
            // Paper: ~0.93 % for group. Allow an order of magnitude of
            // model slack (and the iceberg meta rebuild's cell reads) but
            // insist recovery is far cheaper than the build.
            assert!(pct < 0.15, "{kind:?} recovery/build = {pct:.4}");
        }
    }

    #[test]
    fn recovery_scales_roughly_linearly() {
        let a = measure_cells(SchemeKind::Group, 1 << 12, 0, 3, 256);
        let b = measure_cells(SchemeKind::Group, 1 << 14, 0, 3, 256);
        let ratio = b.recovery_ns as f64 / a.recovery_ns as f64;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4x table => recovery ratio {ratio:.2}"
        );
        // The percentage stays roughly constant (paper: 0.92-0.93 % at
        // every size).
        let rel = b.percentage() / a.percentage();
        assert!((0.5..2.0).contains(&rel), "percentage drifted: {rel:.2}");
    }
}
