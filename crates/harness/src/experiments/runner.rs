//! Shared experiment plumbing: build a scheme, run the paper's workload
//! protocol, or measure space utilization.

use crate::schemes::{build_any, SchemeKind};
use crate::TraceKind;
use nvm_hashfn::{HashKey, Pod};
use nvm_metrics::Json;
use nvm_pmem::SimConfig;
use nvm_table::{HashScheme, InsertError};
use nvm_traces::{BagOfWords, Fingerprint, RandomNum, Trace, Workload, WorkloadReport};

/// One run's entry in a `<name>_metrics.json` document: identifying
/// labels, any experiment-specific `extra` fields, and the shared-schema
/// `metrics` block (latency histograms + pmem/cache counters + scheme
/// probe histograms — see DESIGN.md § Observability).
pub fn run_json(report: &WorkloadReport, extra: &[(&str, Json)]) -> Json {
    let mut j = Json::obj();
    j.insert("scheme", report.scheme.as_str());
    j.insert("trace", report.trace.as_str());
    j.insert("load_factor", report.load_factor);
    j.insert("fill_count", report.fill_count);
    for (k, v) in extra {
        j.insert(k, v.clone());
    }
    j.insert("metrics", report.metrics.to_json());
    j
}

/// Wraps per-run entries into the standard experiment document.
pub fn experiment_json(experiment: &str, runs: Vec<Json>) -> Json {
    let mut j = Json::obj();
    j.insert("experiment", experiment);
    j.insert("runs", runs);
    j
}

/// Runs the §4.2 protocol for one (scheme, trace) pair.
pub fn run_workload(
    scheme: SchemeKind,
    trace: TraceKind,
    total_cells: u64,
    load_factor: f64,
    ops: usize,
    seed: u64,
    group_size: u64,
) -> WorkloadReport {
    match trace {
        TraceKind::RandomNum => run_generic::<u64, u64, _>(
            RandomNum::new(seed),
            scheme,
            total_cells,
            load_factor,
            ops,
            seed,
            group_size,
            |&k| k.wrapping_mul(0x9E37_79B9) | 1,
        ),
        TraceKind::BagOfWords => run_generic::<u64, u64, _>(
            BagOfWords::new(seed),
            scheme,
            total_cells,
            load_factor,
            ops,
            seed,
            group_size,
            |&k| k.rotate_left(17) | 1,
        ),
        TraceKind::Fingerprint => run_generic::<[u8; 16], [u8; 16], _>(
            Fingerprint::new(seed),
            scheme,
            total_cells,
            load_factor,
            ops,
            seed,
            group_size,
            |k| *k,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_generic<K: HashKey, V: Pod, T: Trace<Key = K>>(
    mut trace: T,
    scheme: SchemeKind,
    total_cells: u64,
    load_factor: f64,
    ops: usize,
    seed: u64,
    group_size: u64,
    value_of: impl FnMut(&K) -> V,
) -> WorkloadReport {
    let (mut pm, mut table) =
        build_any::<K, V>(scheme, total_cells, seed, SimConfig::paper_default(), group_size);
    Workload { load_factor, ops }.run(&mut pm, &mut table, &mut trace, value_of)
}

/// Space utilization (Figure 7's metric): the load factor at the first
/// failed insert.
pub fn utilization(
    scheme: SchemeKind,
    trace: TraceKind,
    total_cells: u64,
    seed: u64,
    group_size: u64,
) -> f64 {
    match trace {
        TraceKind::RandomNum => utilization_generic::<u64, u64, _>(
            RandomNum::new(seed),
            scheme,
            total_cells,
            seed,
            group_size,
        ),
        TraceKind::BagOfWords => utilization_generic::<u64, u64, _>(
            BagOfWords::new(seed),
            scheme,
            total_cells,
            seed,
            group_size,
        ),
        TraceKind::Fingerprint => utilization_generic::<[u8; 16], [u8; 16], _>(
            Fingerprint::new(seed),
            scheme,
            total_cells,
            seed,
            group_size,
        ),
    }
}

fn utilization_generic<K: HashKey, V: Pod, T: Trace<Key = K>>(
    mut trace: T,
    scheme: SchemeKind,
    total_cells: u64,
    seed: u64,
    group_size: u64,
) -> f64 {
    let (mut pm, mut table) =
        build_any::<K, V>(scheme, total_cells, seed, SimConfig::paper_default(), group_size);
    loop {
        let k = trace.next_key();
        let v = V::zeroed();
        match table.insert(&mut pm, k, v) {
            Ok(()) => {}
            Err(InsertError::TableFull) => {
                return table.len(&pm) as f64 / table.capacity() as f64;
            }
            Err(e) => panic!("utilization insert failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_runs_on_every_trace() {
        for trace in TraceKind::ALL {
            let r = run_workload(SchemeKind::Group, trace, 1 << 10, 0.5, 50, 3, 64);
            assert_eq!(r.trace, trace.label());
            assert!(r.load_factor >= 0.5);
            assert_eq!(r.insert.ops, 50);
            assert!(r.insert.total_ns > 0);
        }
    }

    #[test]
    fn utilization_is_sane() {
        let u = utilization(SchemeKind::Group, TraceKind::RandomNum, 1 << 12, 5, 256);
        assert!((0.5..1.0).contains(&u), "group utilization {u}");
        let p = utilization(SchemeKind::Path, TraceKind::RandomNum, 1 << 12, 5, 256);
        assert!(p > u, "path {p} should beat group {u}");
    }
}
