//! YCSB core mixes over the five-scheme cast.
//!
//! The paper's traces (RandomNum/BoW/Fingerprint) shape the *key space*
//! but always run the same fill/insert/query/delete protocol; YCSB's A/B/C
//! mixes instead shape the *request stream* — skewed (Zipf 0.99) or
//! uniform choices over resident keys, with updates modelled as
//! delete + reinsert. This is the workload frontier the stable iceberg
//! scheme was added for: under read-heavy skew, lookups dominated by wide
//! buckets + fingerprint words should probe no more than group hashing.

use crate::experiments::runner::experiment_json;
use crate::schemes::{build_any, SchemeKind};
use crate::tablefmt::{count, emit_json, ns, Table};
use crate::{Args, TraceKind};
use nvm_metrics::Json;
use nvm_pmem::SimConfig;
use nvm_traces::{KeyDist, RandomNum, YcsbMix, YcsbReport, YcsbWorkload};

/// The default cast: the five unlogged schemes (the `-L` variants change
/// only the journal arm, which Figure 5 already isolates).
pub const CAST: [SchemeKind; 5] = [
    SchemeKind::Linear,
    SchemeKind::Pfht,
    SchemeKind::Path,
    SchemeKind::Iceberg,
    SchemeKind::Group,
];

/// The load factor every run measures at (mid-fill, like Figure 2's
/// middle column).
pub const LOAD_FACTOR: f64 = 0.5;

/// One (scheme, mix, dist) arm.
pub fn run_one(kind: SchemeKind, cells: u64, mix: YcsbMix, dist: KeyDist, args: &Args) -> YcsbReport {
    let (mut pm, mut table) = build_any::<u64, u64>(
        kind,
        cells,
        args.seed,
        SimConfig::paper_default(),
        args.group_size,
    );
    let mut trace = RandomNum::new(args.seed ^ 0x9C5B);
    YcsbWorkload {
        load_factor: LOAD_FACTOR,
        ops: args.ops,
        mix,
        dist,
        seed: args.seed,
    }
    .run(&mut pm, &mut table, &mut trace, |&k| k.wrapping_mul(31) | 1)
}

/// All arms: cast × mixes × key distributions.
pub fn collect(args: &Args) -> Vec<YcsbReport> {
    let cells = args.cells_for(TraceKind::RandomNum);
    let mut out = Vec::new();
    for kind in args.cast(&CAST) {
        for mix in YcsbMix::ALL {
            for dist in KeyDist::ALL {
                out.push(run_one(kind, cells, mix, dist, args));
            }
        }
    }
    out
}

/// Probe-length p99 over the whole run (fill included), from the
/// scheme's instrumentation. The harness always builds with
/// `instrument`, so this is present.
fn probe_p99(r: &YcsbReport) -> f64 {
    r.scheme_metrics
        .as_ref()
        .map(|s| s.probe.p99())
        .unwrap_or(f64::NAN)
}

/// The experiment's JSON metrics document: one run per arm with the
/// unified `metrics` schema.
pub fn metrics_json(data: &[YcsbReport]) -> Json {
    let runs = data
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("scheme", r.scheme.as_str());
            j.insert("mix", r.mix.label());
            j.insert("dist", r.dist.label());
            j.insert("load_factor", r.load_factor);
            j.insert("fill_count", r.fill_count);
            j.insert("reads", r.read.ops);
            j.insert("updates", r.update.ops);
            j.insert("metrics", r.to_json());
            j
        })
        .collect();
    experiment_json("ycsb", runs)
}

/// Builds the YCSB table (and writes CSV/JSON when `out_dir` is set).
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "ycsb", &metrics_json(&data));
    let mut t = Table::new(
        "YCSB mixes (A 50/50, B 95/5, C read-only) at LF 0.5, RandomNum keys",
        &[
            "scheme",
            "mix",
            "dist",
            "read avg (ns)",
            "read p99 (ns)",
            "update avg (ns)",
            "probe p99",
        ],
    );
    for r in &data {
        t.row(vec![
            r.scheme.clone(),
            r.mix.label().into(),
            r.dist.label().into(),
            ns(r.read.avg_ns()),
            ns(r.read_latency.p99()),
            ns(r.update.avg_ns()),
            count(probe_p99(r)),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance pin: on the read-heavy mix, the stable scheme's
    /// probe-length p99 must not exceed group hashing's — wide buckets +
    /// fingerprint filtering keep lookups short even under Zipf skew.
    #[test]
    fn iceberg_probe_p99_at_most_group_on_read_heavy() {
        let args = Args {
            cells_log2: Some(12),
            ops: 400,
            ..Args::default()
        };
        for dist in KeyDist::ALL {
            let ice = run_one(SchemeKind::Iceberg, 1 << 12, YcsbMix::B, dist, &args);
            let grp = run_one(SchemeKind::Group, 1 << 12, YcsbMix::B, dist, &args);
            let (pi, pg) = (probe_p99(&ice), probe_p99(&grp));
            assert!(pi <= pg, "{dist:?}: iceberg p99 {pi} > group p99 {pg}");
        }
    }

    #[test]
    fn sweep_covers_all_arms_and_schemes() {
        let args = Args {
            cells_log2: Some(10),
            ops: 60,
            ..Args::default()
        };
        let data = collect(&args);
        assert_eq!(data.len(), CAST.len() * 3 * 2);
        for kind in CAST {
            assert!(
                data.iter().any(|r| r.scheme == kind.label()
                    || (kind == SchemeKind::Group2C && r.scheme == "group")),
                "{kind:?} missing from sweep"
            );
        }
        for r in &data {
            assert_eq!(r.read.ops + r.update.ops, 60, "{} {}", r.scheme, r.mix.label());
            if r.mix == YcsbMix::C {
                assert_eq!(r.update.ops, 0, "{}", r.scheme);
            }
        }
    }

    #[test]
    fn schemes_flag_narrows_the_cast() {
        let args = Args {
            cells_log2: Some(10),
            ops: 40,
            schemes: Some(vec![SchemeKind::Iceberg]),
            ..Args::default()
        };
        let data = collect(&args);
        assert_eq!(data.len(), 6); // 1 scheme x 3 mixes x 2 dists
        assert!(data.iter().all(|r| r.scheme == "iceberg"));
    }
}
