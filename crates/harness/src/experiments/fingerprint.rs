//! Extension experiment — what does the DRAM fingerprint cache buy?
//!
//! Group hashing's query path scans a group's cells and compares keys
//! read from NVM. The volatile tag cache (`FpMode::On`) filters those
//! key reads through a one-byte-per-cell DRAM sieve: an occupied cell's
//! key bytes are only fetched when its cached tag matches the probe
//! key's tag. With 8-bit tags ~255/256 of mismatching cells are skipped,
//! so the savings grow with group size and are largest for *negative*
//! lookups (which otherwise examine every occupied cell of the group).
//!
//! This experiment fills a table to LF 0.5 and measures a positive and a
//! negative lookup phase for group sizes 16/32/64, cache off and on,
//! reporting cell-key reads, tag skips, NVM bytes read, last-level cache
//! misses, and simulated latency per query.

use crate::experiments::runner::experiment_json;
use crate::tablefmt::{count, emit_json, ns, ratio, Table};
use crate::{Args, TraceKind};
use group_hash::{FpMode, GroupHash, GroupHashConfig};
use nvm_metrics::Json;
use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
use nvm_table::HashScheme;
use nvm_traces::{RandomNum, Trace};
use std::collections::HashSet;

/// Per-phase counter deltas (whole phase, not per-op, except `avg_ns`).
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Cell-key loads issued from the pool by the probes.
    pub key_reads: u64,
    /// Occupied cells skipped on a tag mismatch (0 with the cache off).
    pub fp_skips: u64,
    /// Tag matches whose key compare also matched.
    pub fp_hits: u64,
    /// Tag matches whose key compare failed (~1/256 of mismatches).
    pub fp_false_positives: u64,
    /// Pool bytes read over the phase.
    pub bytes_read: u64,
    /// Last-level cache misses over the phase.
    pub llc_misses: u64,
    /// Mean simulated query latency.
    pub avg_ns: f64,
}

/// One (group size, fp mode) arm: its positive- and negative-phase stats.
#[derive(Debug, Clone, Copy)]
pub struct RunData {
    pub group_size: u64,
    pub fp: FpMode,
    pub positive: PhaseStats,
    pub negative: PhaseStats,
}

/// The group sizes swept (the paper's Figure 8 range where scan cost
/// starts to dominate).
pub const GROUP_SIZES: [u64; 3] = [16, 32, 64];

fn fp_counters(t: &GroupHash<SimPmem, u64, u64>) -> (u64, u64, u64, u64) {
    // The harness always builds group-hash with `instrument` on.
    let f = &HashScheme::instrumentation(t)
        .expect("harness enables the instrument feature")
        .fingerprint;
    (
        f.key_reads.get(),
        f.skips.get(),
        f.hits.get(),
        f.false_positives.get(),
    )
}

/// Runs `ops` gets and returns the phase's counter deltas.
fn phase(
    pm: &mut SimPmem,
    t: &mut GroupHash<SimPmem, u64, u64>,
    keys: &[u64],
    expect_hit: bool,
) -> PhaseStats {
    let (kr0, sk0, hi0, fp0) = fp_counters(t);
    pm.reset_stats();
    for &k in keys {
        let got = t.get(pm, &k);
        assert_eq!(got.is_some(), expect_hit, "key {k}");
    }
    let (kr1, sk1, hi1, fp1) = fp_counters(t);
    PhaseStats {
        key_reads: kr1 - kr0,
        fp_skips: sk1 - sk0,
        fp_hits: hi1 - hi0,
        fp_false_positives: fp1 - fp0,
        bytes_read: pm.stats().bytes_read,
        llc_misses: pm.cache_stats().map(|c| c.llc_misses()).unwrap_or(0),
        avg_ns: pm.sim_time_ns().unwrap_or(0) as f64 / keys.len().max(1) as f64,
    }
}

/// Builds one arm, fills to LF 0.5, and measures both lookup phases.
fn run_one(total_cells: u64, group_size: u64, fp: FpMode, seed: u64, ops: usize) -> RunData {
    let cells_per_level = total_cells / 2;
    let cfg = GroupHashConfig::new(cells_per_level, group_size.min(cells_per_level))
        .with_seed(seed)
        .with_fp_mode(fp);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::paper_default());
    let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();

    // Fill to LF 0.5 of total capacity, remembering what actually landed.
    let mut trace = RandomNum::new(seed);
    let mut present = Vec::new();
    let mut present_set = HashSet::new();
    while t.len(&pm) < total_cells / 2 {
        let k = trace.next_key();
        if present_set.contains(&k) {
            continue;
        }
        if t.insert(&mut pm, k, k | 1).is_ok() {
            present.push(k);
            present_set.insert(k);
        }
    }

    // Positive phase: re-probe keys known present, cycling if ops exceeds
    // the fill count. Negative phase: keys drawn from an independent
    // stream, pre-filtered against the fill set before measurement.
    let positive_keys: Vec<u64> = (0..ops).map(|i| present[i % present.len()]).collect();
    let mut neg_trace = RandomNum::new(seed ^ 0xDEAD_BEEF);
    let mut negative_keys = Vec::with_capacity(ops);
    while negative_keys.len() < ops {
        let k = neg_trace.next_key();
        if !present_set.contains(&k) {
            negative_keys.push(k);
        }
    }

    let positive = phase(&mut pm, &mut t, &positive_keys, true);
    let negative = phase(&mut pm, &mut t, &negative_keys, false);
    RunData {
        group_size,
        fp,
        positive,
        negative,
    }
}

/// All (group size, mode) arms.
pub fn collect(args: &Args) -> Vec<RunData> {
    let cells = args.cells_for(TraceKind::RandomNum);
    let mut out = Vec::new();
    for &gs in &GROUP_SIZES {
        for fp in [FpMode::Off, FpMode::On] {
            out.push(run_one(cells, gs, fp, args.seed, args.ops));
        }
    }
    out
}

fn mode_label(fp: FpMode) -> &'static str {
    match fp {
        FpMode::Off => "off",
        FpMode::On => "on",
    }
}

fn phase_json(p: &PhaseStats) -> Json {
    let mut j = Json::obj();
    j.insert("key_reads", p.key_reads);
    j.insert("fp_skips", p.fp_skips);
    j.insert("fp_hits", p.fp_hits);
    j.insert("fp_false_positives", p.fp_false_positives);
    j.insert("bytes_read", p.bytes_read);
    j.insert("llc_misses", p.llc_misses);
    j.insert("avg_query_ns", p.avg_ns);
    j
}

/// The experiment's JSON metrics document: one run per (group size, fp
/// mode) arm with a block per lookup phase.
pub fn metrics_json(data: &[RunData]) -> Json {
    let runs = data
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("scheme", "group");
            j.insert("group_size", r.group_size);
            j.insert("fp_cache", mode_label(r.fp));
            j.insert("positive", phase_json(&r.positive));
            j.insert("negative", phase_json(&r.negative));
            j
        })
        .collect();
    experiment_json("fingerprint", runs)
}

/// Builds the report tables (and writes CSV/JSON when `out_dir` is set).
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "fingerprint", &metrics_json(&data));

    let mut detail = Table::new(
        "Extension: DRAM fingerprint cache (RandomNum @ LF 0.5)",
        &[
            "group size",
            "fp cache",
            "phase",
            "key reads",
            "tag skips",
            "NVM bytes read",
            "LLC misses",
            "avg query",
        ],
    );
    for r in &data {
        for (label, p) in [("positive", &r.positive), ("negative", &r.negative)] {
            detail.row(vec![
                r.group_size.to_string(),
                mode_label(r.fp).into(),
                label.into(),
                count(p.key_reads as f64),
                count(p.fp_skips as f64),
                count(p.bytes_read as f64),
                count(p.llc_misses as f64),
                ns(p.avg_ns),
            ]);
        }
    }

    let mut summary = Table::new(
        "Negative-lookup key-read reduction (off / on)",
        &["group size", "key reads off", "key reads on", "reduction"],
    );
    for &gs in &GROUP_SIZES {
        let pick = |fp: FpMode| {
            data.iter()
                .find(|r| r.group_size == gs && r.fp == fp)
                .unwrap()
        };
        let (off, on) = (pick(FpMode::Off), pick(FpMode::On));
        summary.row(vec![
            gs.to_string(),
            count(off.negative.key_reads as f64),
            count(on.negative.key_reads as f64),
            ratio(off.negative.key_reads as f64 / on.negative.key_reads.max(1) as f64),
        ]);
    }
    vec![detail, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: at group size 64 the cache must cut negative-
    /// lookup cell-key reads by at least 2x (in practice it is closer to
    /// the 256x tag selectivity), and positive lookups must not read more
    /// keys than the unfiltered scan.
    #[test]
    fn cache_halves_negative_key_reads_at_gs64() {
        let args = Args {
            cells_log2: Some(12),
            ops: 300,
            ..Args::default()
        };
        let data = collect(&args);
        let pick = |gs: u64, fp: FpMode| {
            *data
                .iter()
                .find(|r| r.group_size == gs && r.fp == fp)
                .unwrap()
        };
        let (off, on) = (pick(64, FpMode::Off), pick(64, FpMode::On));
        assert!(
            on.negative.key_reads * 2 <= off.negative.key_reads,
            "negative key reads: on {} vs off {}",
            on.negative.key_reads,
            off.negative.key_reads
        );
        assert!(
            on.positive.key_reads <= off.positive.key_reads,
            "positive key reads: on {} vs off {}",
            on.positive.key_reads,
            off.positive.key_reads
        );
        // The tag sieve's accounting must close: every key read it allows
        // is either a hit or a false positive.
        assert_eq!(
            on.negative.key_reads,
            on.negative.fp_hits + on.negative.fp_false_positives
        );
        assert!(on.negative.fp_skips > 0);
        // Off mode never classifies: raw key reads only.
        assert_eq!(off.negative.fp_skips, 0);
        assert_eq!(off.negative.fp_hits, 0);
    }
}
