//! Tentpole experiment — fence coalescing from the batched write path.
//!
//! A single consistent insert costs 3 fences: drain the cell write,
//! publish the bitmap bit, commit the count. `insert_batch` stages K
//! cell writes behind one shared drain fence and one count commit, so a
//! K-op batch pays K + 2 fences — per op that is 1 + 2/K, approaching
//! one fence per op as K grows. Undo-logged schemes coalesce up to
//! their journal's chunk capacity (`ops_per_txn`), so their curve
//! flattens at 1 + c/min(K, chunk) instead.
//!
//! This experiment inserts `ops` distinct keys through `insert_batch`
//! at several batch sizes across the full scheme cast, reporting
//! fences, flushes, and atomic writes per op plus simulated latency.

use crate::experiments::runner::experiment_json;
use crate::schemes::{build_any, SchemeKind};
use crate::tablefmt::{count, emit_json, ns, ratio, Table};
use crate::{Args, TraceKind};
use nvm_metrics::Json;
use nvm_pmem::{Pmem, SimConfig};
use nvm_table::HashScheme;
use nvm_traces::{RandomNum, Trace};
use std::collections::HashSet;

/// The batch sizes swept (1 reproduces the single-op write path).
pub const BATCH_SIZES: [usize; 5] = [1, 4, 16, 64, 256];

/// The schemes swept: the bare cast plus the undo-logged variants,
/// whose journal chunking caps effective coalescing.
pub const CAST: [SchemeKind; 9] = [
    SchemeKind::Linear,
    SchemeKind::LinearL,
    SchemeKind::Pfht,
    SchemeKind::PfhtL,
    SchemeKind::Path,
    SchemeKind::PathL,
    SchemeKind::Iceberg,
    SchemeKind::IcebergL,
    SchemeKind::Group,
];

/// One (scheme, batch size) arm: whole-phase pmem counter deltas.
#[derive(Debug, Clone, Copy)]
pub struct RunData {
    pub scheme: SchemeKind,
    pub batch: usize,
    /// Keys actually inserted (all batches succeed at this load factor).
    pub ops: u64,
    pub fences: u64,
    pub flushes: u64,
    pub atomics: u64,
    /// Mean simulated insert latency.
    pub avg_ns: f64,
}

impl RunData {
    pub fn fences_per_op(&self) -> f64 {
        self.fences as f64 / self.ops.max(1) as f64
    }
    pub fn flushes_per_op(&self) -> f64 {
        self.flushes as f64 / self.ops.max(1) as f64
    }
    pub fn atomics_per_op(&self) -> f64 {
        self.atomics as f64 / self.ops.max(1) as f64
    }
}

/// Builds one arm and inserts `ops` distinct keys in `batch`-sized
/// chunks, measuring the whole insert phase.
fn run_one(kind: SchemeKind, total_cells: u64, batch: usize, seed: u64, ops: usize) -> RunData {
    let (mut pm, mut t) =
        build_any::<u64, u64>(kind, total_cells, seed, SimConfig::paper_default(), 64);

    let mut trace = RandomNum::new(seed ^ 0xBA7C);
    let mut seen = HashSet::new();
    let mut items = Vec::with_capacity(ops);
    while items.len() < ops {
        let k = trace.next_key();
        if seen.insert(k) {
            items.push((k, k ^ 0xFF));
        }
    }

    pm.reset_stats();
    for chunk in items.chunks(batch) {
        t.insert_batch(&mut pm, chunk)
            .unwrap_or_else(|e| panic!("{kind:?} K={batch}: {e}"));
    }
    let s = pm.stats();
    RunData {
        scheme: kind,
        batch,
        ops: ops as u64,
        fences: s.fences,
        flushes: s.flushes,
        atomics: s.atomic_writes,
        avg_ns: pm.sim_time_ns().unwrap_or(0) as f64 / ops.max(1) as f64,
    }
}

/// All (scheme, batch size) arms.
pub fn collect(args: &Args) -> Vec<RunData> {
    let cells = args.cells_for(TraceKind::RandomNum);
    // Stay well under capacity so every batch lands without fallback.
    let ops = args.ops.min((cells / 4) as usize);
    let mut out = Vec::new();
    for kind in CAST {
        for &batch in &BATCH_SIZES {
            out.push(run_one(kind, cells, batch, args.seed, ops));
        }
    }
    out
}

/// The experiment's JSON metrics document: one run per arm.
pub fn metrics_json(data: &[RunData]) -> Json {
    let runs = data
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("scheme", r.scheme.label());
            j.insert("batch", r.batch as u64);
            j.insert("ops", r.ops);
            j.insert("fences", r.fences);
            j.insert("flushes", r.flushes);
            j.insert("atomic_writes", r.atomics);
            j.insert("fences_per_op", r.fences_per_op());
            j.insert("flushes_per_op", r.flushes_per_op());
            j.insert("avg_insert_ns", r.avg_ns);
            j
        })
        .collect();
    experiment_json("batch", runs)
}

/// Builds the report tables (and writes CSV/JSON when `out_dir` is set).
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "batch", &metrics_json(&data));

    let mut detail = Table::new(
        "Batched commit: write-path cost vs batch size (RandomNum inserts)",
        &[
            "scheme",
            "K",
            "fences/op",
            "flushes/op",
            "atomics/op",
            "avg insert",
        ],
    );
    for r in &data {
        detail.row(vec![
            r.scheme.label().into(),
            r.batch.to_string(),
            ratio(r.fences_per_op()),
            ratio(r.flushes_per_op()),
            ratio(r.atomics_per_op()),
            ns(r.avg_ns),
        ]);
    }

    let kmax = *BATCH_SIZES.last().unwrap();
    let mut summary = Table::new(
        format!("Fence coalescing: K=1 vs K={kmax} (expect 3 -> 1+2/K unlogged)"),
        &["scheme", "fences/op K=1", &format!("fences/op K={kmax}"), "reduction", "fences saved"],
    );
    for kind in CAST {
        let pick = |k: usize| data.iter().find(|r| r.scheme == kind && r.batch == k).unwrap();
        let (one, big) = (pick(1), pick(kmax));
        summary.row(vec![
            kind.label().into(),
            ratio(one.fences_per_op()),
            ratio(big.fences_per_op()),
            ratio(one.fences_per_op() / big.fences_per_op().max(f64::MIN_POSITIVE)),
            count((one.fences - big.fences) as f64),
        ]);
    }
    vec![detail, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: the unlogged schemes must hit 3 fences/op at
    /// K=1 (the pinned single-op budget) and come within rounding of
    /// 1 + 2/K at K=64, and the curve must be monotone in K.
    #[test]
    fn fences_per_op_follow_one_plus_two_over_k() {
        let args = Args {
            cells_log2: Some(12),
            ops: 320,
            ..Args::default()
        };
        let data = collect(&args);
        let pick = |kind: SchemeKind, k: usize| {
            *data
                .iter()
                .find(|r| r.scheme == kind && r.batch == k)
                .unwrap()
        };
        for kind in [
            SchemeKind::Linear,
            SchemeKind::Pfht,
            SchemeKind::Path,
            SchemeKind::Iceberg,
            SchemeKind::Group,
        ] {
            let one = pick(kind, 1);
            assert!(
                (one.fences_per_op() - 3.0).abs() < 0.05,
                "{kind:?} K=1: {} fences/op, expected 3",
                one.fences_per_op()
            );
            let big = pick(kind, 64);
            assert!(
                big.fences_per_op() < 1.2,
                "{kind:?} K=64: {} fences/op, expected ~1+2/64",
                big.fences_per_op()
            );
            let mut prev = f64::INFINITY;
            for &k in &BATCH_SIZES {
                let f = pick(kind, k).fences_per_op();
                assert!(f <= prev + 1e-9, "{kind:?}: fences/op rose at K={k}");
                prev = f;
            }
        }
        // Undo-logged path hashing journals at most 4 ops per chunk, so
        // its curve flattens instead of approaching 1.
        let capped = pick(SchemeKind::PathL, 64);
        assert!(
            capped.fences_per_op() > pick(SchemeKind::Path, 64).fences_per_op(),
            "chunk-capped PathL should pay more fences than bare path"
        );
    }
}
