//! One module per paper experiment. Each exposes `run(&Args) -> Vec<Table>`
//! so the `all` binary can chain them; the per-figure binaries print the
//! same tables.

pub mod batch;
pub mod concurrent;
pub mod fig2;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fingerprint;
pub mod heap;
pub mod multi_get;
pub mod nvm_sweep;
pub mod prefetch;
pub mod runner;
pub mod server;
pub mod table3;
pub mod wear;
pub mod ycsb;
