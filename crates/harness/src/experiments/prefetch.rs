//! Extension experiment — how much of group sharing's advantage is the
//! hardware prefetcher?
//!
//! The paper's observation 2 credits contiguity: "a single memory access
//! can prefetch multiple cells belonging to the same cacheline". Within a
//! cacheline that is plain spatial locality; *across* lines it is the L2
//! stream prefetcher. This experiment reruns the Figure 5 measurement
//! with the streamer on (the paper's testbed) and off, for group hashing
//! and path hashing — the contiguous and the scattered design. The
//! streamer should help group hashing's group scans substantially and
//! path hashing barely at all, because only ascending-line access
//! patterns trigger it.

use crate::experiments::runner::{experiment_json, run_json};
use crate::schemes::{build_any, SchemeKind};
use crate::tablefmt::{emit_json, ns, ratio, Table};
use crate::{Args, TraceKind};
use nvm_cachesim::CacheConfig;
use nvm_metrics::Json;
use nvm_pmem::SimConfig;
use nvm_traces::{RandomNum, Workload, WorkloadReport};

/// Runs the LF-0.5 RandomNum workload under a given cache configuration.
fn run_with_cache(
    kind: SchemeKind,
    cells: u64,
    ops: usize,
    seed: u64,
    group_size: u64,
    cache: CacheConfig,
) -> WorkloadReport {
    let sim = SimConfig {
        cache,
        ..SimConfig::paper_default()
    };
    let (mut pm, mut table) = build_any::<u64, u64>(kind, cells, seed, sim, group_size);
    let mut trace = RandomNum::new(seed);
    Workload {
        load_factor: 0.5,
        ops,
    }
    .run(&mut pm, &mut table, &mut trace, |&k| k | 1)
}

/// (scheme, with-prefetch report, without-prefetch report).
pub fn collect(args: &Args) -> Vec<(SchemeKind, WorkloadReport, WorkloadReport)> {
    let cells = args.cells_for(TraceKind::RandomNum);
    [SchemeKind::Group, SchemeKind::PathL, SchemeKind::LinearL]
        .iter()
        .map(|&kind| {
            let with = run_with_cache(
                kind,
                cells,
                args.ops,
                args.seed,
                args.group_size,
                CacheConfig::xeon_e5_2620(),
            );
            let without = run_with_cache(
                kind,
                cells,
                args.ops,
                args.seed,
                args.group_size,
                CacheConfig::xeon_e5_2620_no_prefetch(),
            );
            (kind, with, without)
        })
        .collect()
}

/// The experiment's JSON metrics document: two entries per scheme, the
/// `stream_prefetcher` flag distinguishing the ablation arms.
pub fn metrics_json(data: &[(SchemeKind, WorkloadReport, WorkloadReport)]) -> Json {
    let mut runs = Vec::new();
    for (_, with, without) in data {
        runs.push(run_json(with, &[("stream_prefetcher", Json::from(true))]));
        runs.push(run_json(without, &[("stream_prefetcher", Json::from(false))]));
    }
    experiment_json("prefetch", runs)
}

/// Builds the ablation table.
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "prefetch", &metrics_json(&data));
    let mut t = Table::new(
        "Extension: stream-prefetcher ablation (query latency, RandomNum @ LF 0.5)",
        &[
            "scheme",
            "query w/ streamer",
            "query w/o streamer",
            "slowdown",
        ],
    );
    for (kind, with, without) in &data {
        t.row(vec![
            kind.label().into(),
            ns(with.query.avg_ns()),
            ns(without.query.avg_ns()),
            ratio(without.query.avg_ns() / with.query.avg_ns()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Disabling the streamer must hurt group hashing's queries far more
    /// than path hashing's (whose probes never form ascending streams).
    #[test]
    fn streamer_matters_most_for_contiguous_scans() {
        let args = Args {
            cells_log2: Some(14),
            ops: 200,
            ..Args::default()
        };
        let data = collect(&args);
        let slowdown = |kind: SchemeKind| {
            let (_, with, without) = data.iter().find(|(k, ..)| *k == kind).unwrap();
            without.query.avg_ns() / with.query.avg_ns()
        };
        let group = slowdown(SchemeKind::Group);
        let path = slowdown(SchemeKind::PathL);
        assert!(
            group > path,
            "group slowdown {group:.2} should exceed path {path:.2}"
        );
        assert!(group > 1.1, "streamer had no effect on group: {group:.2}");
    }
}
