//! Extension experiment — sensitivity to the NVM technology (Table 1).
//!
//! The paper's Table 1 lists PCM (slow writes), ReRAM, and STT-MRAM
//! (near-DRAM writes). This sweep runs the LF-0.5 RandomNum insert
//! workload under each technology's latency preset. The measured result
//! is that group hashing's advantage over a logged baseline is
//! essentially the *flush-count ratio* (~7 persisted lines vs ~3), so it
//! is stable (~2.4×) across the whole technology range — write
//! efficiency helps on every NVM, not only the slow ones — while
//! absolute latencies scale with the write-back cost.

use crate::experiments::runner::{experiment_json, run_json};
use crate::schemes::{build_any, SchemeKind};
use crate::tablefmt::{emit_json, ns, ratio, Table};
use crate::{Args, TraceKind};
use nvm_metrics::Json;
use nvm_pmem::{LatencyModel, SimConfig};
use nvm_traces::{RandomNum, Workload, WorkloadReport};

/// The swept technologies: (label, latency preset).
pub fn technologies() -> Vec<(&'static str, LatencyModel)> {
    vec![
        ("STT-MRAM (~30ns wb)", LatencyModel::stt_mram()),
        ("emulated NVM (300ns wb, paper)", LatencyModel::paper_default()),
        ("PCM (~500ns wb)", LatencyModel::pcm()),
    ]
}

fn run_with_latency(
    kind: SchemeKind,
    cells: u64,
    ops: usize,
    seed: u64,
    group_size: u64,
    latency: LatencyModel,
) -> WorkloadReport {
    let sim = SimConfig {
        latency,
        ..SimConfig::paper_default()
    };
    let (mut pm, mut table) = build_any::<u64, u64>(kind, cells, seed, sim, group_size);
    let mut trace = RandomNum::new(seed);
    Workload {
        load_factor: 0.5,
        ops,
    }
    .run(&mut pm, &mut table, &mut trace, |&k| k | 1)
}

/// (technology label, group report, linear-L report) per technology.
pub fn collect(args: &Args) -> Vec<(&'static str, WorkloadReport, WorkloadReport)> {
    let cells = args.cells_for(TraceKind::RandomNum);
    technologies()
        .into_iter()
        .map(|(label, latency)| {
            let group = run_with_latency(
                SchemeKind::Group,
                cells,
                args.ops,
                args.seed,
                args.group_size,
                latency,
            );
            let linear_l = run_with_latency(
                SchemeKind::LinearL,
                cells,
                args.ops,
                args.seed,
                args.group_size,
                latency,
            );
            (label, group, linear_l)
        })
        .collect()
}

/// The experiment's JSON metrics document: group and linear-L entries
/// per technology, tagged with the technology label.
pub fn metrics_json(data: &[(&'static str, WorkloadReport, WorkloadReport)]) -> Json {
    let mut runs = Vec::new();
    for (label, group, linear_l) in data {
        for r in [group, linear_l] {
            runs.push(run_json(r, &[("technology", Json::from(*label))]));
        }
    }
    experiment_json("nvm_sweep", runs)
}

/// Builds the sweep table.
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "nvm_sweep", &metrics_json(&data));
    let mut t = Table::new(
        "Extension: NVM technology sweep (insert latency, RandomNum @ LF 0.5)",
        &["technology", "group", "linear-L", "group advantage"],
    );
    for (label, group, linear_l) in &data {
        t.row(vec![
            (*label).into(),
            ns(group.insert.avg_ns()),
            ns(linear_l.insert.avg_ns()),
            ratio(linear_l.insert.avg_ns() / group.insert.avg_ns()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Group hashing's advantage is the flush-count ratio: large (>1.8x)
    /// and stable across the whole technology range, while absolute
    /// latency grows monotonically with write-back cost.
    #[test]
    fn advantage_is_stable_and_latency_scales() {
        let args = Args {
            cells_log2: Some(12),
            ops: 120,
            ..Args::default()
        };
        let data = collect(&args);
        let advantages: Vec<f64> = data
            .iter()
            .map(|(_, g, l)| l.insert.avg_ns() / g.insert.avg_ns())
            .collect();
        for a in &advantages {
            assert!(*a > 1.8, "advantage collapsed: {advantages:?}");
        }
        let spread = advantages.iter().cloned().fold(f64::MIN, f64::max)
            / advantages.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.3, "advantage unstable across technologies: {advantages:?}");
        // technologies() is ordered by increasing write-back latency:
        // absolute group insert latency must rise with it.
        let lats: Vec<f64> = data.iter().map(|(_, g, _)| g.insert.avg_ns()).collect();
        assert!(
            lats.windows(2).all(|w| w[1] > w[0]),
            "insert latency not increasing with write-back cost: {lats:?}"
        );
    }
}
