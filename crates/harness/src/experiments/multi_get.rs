//! Extension experiment — what does the vectorized `get_batch` pipeline
//! buy over single-key `get`s?
//!
//! The single-key query serializes its NVM reads: level-1 slot, group
//! occupancy word, candidate cells — each a potential cache miss the
//! probe waits out before issuing the next. `get_batch` hashes the whole
//! key vector up front, software-prefetches every candidate line, and
//! resolves the probes against warm cache, so the per-key miss latencies
//! overlap (see DESIGN.md § "Vectorized reads").
//!
//! This experiment fills a group-hash table to LF 0.5, then measures a
//! positive and a negative lookup phase at batch sizes 1/8/32/128,
//! sequential `get` loop vs one `get_batch` per batch, with the
//! fingerprint cache off and on. The comparison figure is
//! `results/prefetch_ablation.csv`'s single-key group row (181.9 ns with
//! the streamer): the acceptance bar is batch-128 negative lookups at
//! least 2x faster per key than that baseline.

use crate::experiments::runner::experiment_json;
use crate::tablefmt::{count, emit_json, ns, ratio, Table};
use crate::{Args, TraceKind};
use group_hash::{FpMode, GroupHash, GroupHashConfig};
use nvm_cachesim::CacheConfig;
use nvm_metrics::Json;
use nvm_pmem::{Pmem, Region, SimConfig, SimPmem};
use nvm_traces::{RandomNum, Trace};
use std::collections::HashSet;

/// The batch sizes swept. Size 1 pins the pipeline's fixed overhead
/// (hash + prefetch of a single key buys nothing); 128 is where the
/// per-key latencies fully overlap.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

/// One measured (phase, batch size) cell: per-key latency both ways.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Batch size of the vectorized arm.
    pub batch: usize,
    /// Mean per-key latency of the sequential `get` loop.
    pub seq_ns: f64,
    /// Mean per-key latency of the `get_batch` pipeline.
    pub batch_ns: f64,
    /// Pool bytes read by the batched arm (prefetched lines included).
    pub bytes_read: u64,
    /// Last-level cache misses of the batched arm.
    pub llc_misses: u64,
}

/// One (fp mode, phase) sweep over every batch size.
#[derive(Debug, Clone)]
pub struct RunData {
    pub fp: FpMode,
    /// "positive" or "negative".
    pub phase: &'static str,
    pub cells: Vec<Cell>,
}

fn mode_label(fp: FpMode) -> &'static str {
    match fp {
        FpMode::Off => "off",
        FpMode::On => "on",
    }
}

/// Mean per-key simulated latency of `f` run once over `keys`, measured
/// from a cold CPU cache (every arm evicts first, so no arm inherits the
/// lines a previous arm — or the fill — left warm).
fn timed(pm: &mut SimPmem, keys_len: usize, f: impl FnOnce(&SimPmem)) -> (f64, u64, u64) {
    pm.cool_caches();
    pm.reset_stats();
    f(pm);
    let per_key = pm.sim_time_ns().unwrap_or(0) as f64 / keys_len.max(1) as f64;
    let bytes = pm.stats().bytes_read;
    let llc = pm.cache_stats().map(|c| c.llc_misses()).unwrap_or(0);
    (per_key, bytes, llc)
}

/// Measures one phase (one key vector) across every batch size, both
/// sequentially and batched. Each arm re-runs the full key vector from a
/// cold cache (`timed` evicts first) — without that, only the first arm
/// would pay real miss latency and every later arm would time warm
/// re-reads of the same lines, which is not what a point lookup costs.
fn sweep_phase(
    pm: &mut SimPmem,
    t: &GroupHash<SimPmem, u64, u64>,
    keys: &[u64],
    expect_hit: bool,
) -> Vec<Cell> {
    BATCH_SIZES
        .iter()
        .map(|&b| {
            let (seq_ns, _, _) = timed(pm, keys.len(), |pm| {
                for k in keys {
                    assert_eq!(t.get(pm, k).is_some(), expect_hit, "key {k}");
                }
            });
            let (batch_ns, bytes_read, llc_misses) = timed(pm, keys.len(), |pm| {
                for chunk in keys.chunks(b) {
                    for (k, got) in chunk.iter().zip(t.get_batch(pm, chunk)) {
                        assert_eq!(got.is_some(), expect_hit, "key {k}");
                    }
                }
            });
            Cell {
                batch: b,
                seq_ns,
                batch_ns,
                bytes_read,
                llc_misses,
            }
        })
        .collect()
}

/// Builds one fp-mode arm, fills to LF 0.5, and sweeps both phases.
fn run_one(total_cells: u64, group_size: u64, fp: FpMode, seed: u64, ops: usize) -> Vec<RunData> {
    let cells_per_level = total_cells / 2;
    let cfg = GroupHashConfig::new(cells_per_level, group_size.min(cells_per_level))
        .with_seed(seed)
        .with_fp_mode(fp);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    // Same machine model as the prefetch-ablation baseline: paper
    // latencies, Xeon E5-2620 hierarchy with the stream prefetcher on.
    let sim = SimConfig {
        cache: CacheConfig::xeon_e5_2620(),
        ..SimConfig::paper_default()
    };
    let mut pm = SimPmem::new(size, sim);
    let mut t = GroupHash::create(&mut pm, Region::new(0, size), cfg).unwrap();

    // Fill to LF 0.5, remembering what landed (as in the fingerprint
    // experiment, whose phases this reuses).
    let mut trace = RandomNum::new(seed);
    let mut present = Vec::new();
    let mut present_set = HashSet::new();
    while t.len(&pm) < total_cells / 2 {
        let k = trace.next_key();
        if present_set.contains(&k) {
            continue;
        }
        if t.insert(&mut pm, k, k | 1).is_ok() {
            present.push(k);
            present_set.insert(k);
        }
    }

    let positive_keys: Vec<u64> = (0..ops).map(|i| present[i % present.len()]).collect();
    let mut neg_trace = RandomNum::new(seed ^ 0xDEAD_BEEF);
    let mut negative_keys = Vec::with_capacity(ops);
    while negative_keys.len() < ops {
        let k = neg_trace.next_key();
        if !present_set.contains(&k) {
            negative_keys.push(k);
        }
    }

    vec![
        RunData {
            fp,
            phase: "positive",
            cells: sweep_phase(&mut pm, &t, &positive_keys, true),
        },
        RunData {
            fp,
            phase: "negative",
            cells: sweep_phase(&mut pm, &t, &negative_keys, false),
        },
    ]
}

/// All (fp mode, phase) sweeps. Group size is pinned to 64 — the largest
/// fingerprint-experiment arm — so the tag-sieve and prefetch effects
/// compose on the same geometry.
pub fn collect(args: &Args) -> Vec<RunData> {
    let cells = args.cells_for(TraceKind::RandomNum);
    let mut out = Vec::new();
    for fp in [FpMode::Off, FpMode::On] {
        out.extend(run_one(cells, 64, fp, args.seed, args.ops));
    }
    out
}

/// The experiment's JSON metrics document: one run per (fp mode, phase,
/// batch size) cell.
pub fn metrics_json(data: &[RunData]) -> Json {
    let mut runs = Vec::new();
    for r in data {
        for c in &r.cells {
            let mut j = Json::obj();
            j.insert("scheme", "group");
            j.insert("fp_cache", mode_label(r.fp));
            j.insert("phase", r.phase);
            j.insert("batch", c.batch as u64);
            j.insert("seq_ns_per_key", c.seq_ns);
            j.insert("batch_ns_per_key", c.batch_ns);
            j.insert("speedup", c.seq_ns / c.batch_ns.max(f64::EPSILON));
            j.insert("bytes_read", c.bytes_read);
            j.insert("llc_misses", c.llc_misses);
            runs.push(j);
        }
    }
    experiment_json("multi_get", runs)
}

/// Builds the report table (and writes CSV/JSON when `out_dir` is set).
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "multi_get", &metrics_json(&data));

    let mut t = Table::new(
        "Extension: vectorized multi-get (RandomNum @ LF 0.5, group size 64)",
        &[
            "fp cache",
            "phase",
            "batch",
            "get ns/key",
            "get_batch ns/key",
            "speedup",
            "NVM bytes read",
            "LLC misses",
        ],
    );
    for r in &data {
        for c in &r.cells {
            t.row(vec![
                mode_label(r.fp).into(),
                r.phase.into(),
                c.batch.to_string(),
                ns(c.seq_ns),
                ns(c.batch_ns),
                ratio(c.seq_ns / c.batch_ns.max(f64::EPSILON)),
                count(c.bytes_read as f64),
                count(c.llc_misses as f64),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar, at the default experiment scale (2^18 cells —
    /// the table outruns L1/L2, which is the regime the pipeline
    /// targets): unfiltered (fp off) batch-128 negative lookups — the
    /// configuration of the 181.9 ns prefetch-ablation baseline, where
    /// every probe scans cold cell keys — must run at least 2x faster
    /// per key than the sequential loop, and batch-128 positives must
    /// not lose to sequential. (The committed `results/multi_get.csv`
    /// additionally shows batch-128 negatives beating half the baseline
    /// figure outright.) With the tag sieve on, sequential negatives
    /// barely touch the pool, so no speedup is claimed there — only that
    /// the pipeline's prefetch overhead stays bounded.
    #[test]
    fn batch_128_negative_is_at_least_twice_as_fast() {
        let args = Args {
            cells_log2: Some(18),
            ops: 256,
            ..Args::default()
        };
        let data = collect(&args);
        let pick = |fp: FpMode, phase: &str, batch: usize| {
            data.iter()
                .find(|r| r.fp == fp && r.phase == phase)
                .unwrap()
                .cells
                .iter()
                .find(|c| c.batch == batch)
                .copied()
                .unwrap()
        };
        let neg = pick(FpMode::Off, "negative", 128);
        assert!(
            neg.batch_ns * 2.0 <= neg.seq_ns,
            "batch-128 negative: {} ns/key vs sequential {} ns/key",
            neg.batch_ns,
            neg.seq_ns
        );
        let pos = pick(FpMode::Off, "positive", 128);
        assert!(
            pos.batch_ns <= pos.seq_ns,
            "batch-128 positive lost to sequential: {} vs {}",
            pos.batch_ns,
            pos.seq_ns
        );
        // Tag sieve on: sequential negatives are already DRAM-bound, so
        // the honest claim is bounded overhead, not speedup.
        let neg_on = pick(FpMode::On, "negative", 128);
        assert!(
            neg_on.batch_ns <= neg_on.seq_ns.max(50.0),
            "fp-on batch-128 negative overhead too high: {} vs {}",
            neg_on.batch_ns,
            neg_on.seq_ns
        );
    }
}
