//! Figure 8 — the effect of group size.
//!
//! RandomNum, load factor 0.5, group sizes 64…1024. Larger groups search
//! more cells on collision (latency grows) but smooth out occupancy
//! imbalance (utilization grows); the paper picks 256 as the sweet spot.

use crate::experiments::runner::{experiment_json, run_json, run_workload, utilization};
use crate::tablefmt::{emit_json, ns, percent, Table};
use crate::{Args, SchemeKind, TraceKind};
use nvm_metrics::Json;
use nvm_traces::WorkloadReport;

/// Group sizes swept by the paper.
pub const GROUP_SIZES: [u64; 5] = [64, 128, 256, 512, 1024];

/// (group size, workload report, utilization) per sweep point.
pub fn collect(args: &Args) -> Vec<(u64, WorkloadReport, f64)> {
    let cells = args.cells_for(TraceKind::RandomNum);
    GROUP_SIZES
        .iter()
        .map(|&gs| {
            let r = run_workload(
                SchemeKind::Group,
                TraceKind::RandomNum,
                cells,
                0.5,
                args.ops,
                args.seed,
                gs,
            );
            let u = utilization(SchemeKind::Group, TraceKind::RandomNum, cells, args.seed, gs);
            (gs, r, u)
        })
        .collect()
}

/// The experiment's JSON metrics document: one entry per group size,
/// the shared-schema `metrics` block plus the utilization scalar.
pub fn metrics_json(data: &[(u64, WorkloadReport, f64)]) -> Json {
    let runs = data
        .iter()
        .map(|(gs, r, u)| {
            run_json(
                r,
                &[
                    ("group_size", Json::from(*gs)),
                    ("utilization", Json::from(*u)),
                ],
            )
        })
        .collect();
    experiment_json("fig8", runs)
}

/// Builds the Figure 8(a) latency sweep and 8(b) utilization sweep.
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "fig8", &metrics_json(&data));
    let mut t = Table::new(
        "Figure 8: group size vs latency (RandomNum @ LF 0.5) and space utilization",
        &["group size", "insert", "query", "delete", "utilization"],
    );
    for (gs, r, u) in &data {
        t.row(vec![
            gs.to_string(),
            ns(r.insert.avg_ns()),
            ns(r.query.avg_ns()),
            ns(r.delete.avg_ns()),
            percent(*u),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Utilization must increase with group size; latency must not shrink.
    #[test]
    fn monotone_trends() {
        let cells = 1 << 12;
        let sizes = [16u64, 64, 256];
        let mut utils = Vec::new();
        let mut queries = Vec::new();
        for &gs in &sizes {
            utils.push(utilization(
                SchemeKind::Group,
                TraceKind::RandomNum,
                cells,
                3,
                gs,
            ));
            let r = run_workload(
                SchemeKind::Group,
                TraceKind::RandomNum,
                cells,
                0.5,
                100,
                3,
                gs,
            );
            queries.push(r.query.avg_ns());
        }
        assert!(
            utils.windows(2).all(|w| w[1] >= w[0] - 0.02),
            "utilization not increasing: {utils:?}"
        );
        // Latency trends upward with group size (allow small noise).
        assert!(
            queries[2] >= queries[0] * 0.9,
            "query latency collapsed: {queries:?}"
        );
    }

    #[test]
    fn table_shape() {
        let tables = run(&Args {
            cells_log2: Some(12),
            ops: 40,
            ..Args::default()
        });
        assert_eq!(tables[0].len(), GROUP_SIZES.len());
    }
}
