//! Extension experiment — value-heap fragmentation, wear, and crash
//! recovery.
//!
//! The paper's write-efficiency argument is made for the *index*; this
//! experiment extends it to the value heap that a KV store hangs off
//! the index. Two phases:
//!
//! 1. **Churn** — an alloc/free/overwrite mix over several value-size
//!    distributions, once per slab-rotation policy. Reported per arm:
//!    internal fragmentation (allocated slot bytes vs live blob bytes)
//!    and wear (per-slab logical write counts plus the simulator's
//!    media write-backs over the heap region). Wear-aware rotation
//!    should spread writes nearly evenly across each class's slabs
//!    where first-fit grinds slab 0.
//! 2. **Recovery** — crash a `set_batch` mid-flight at several points,
//!    measure the blob bytes the torn image leaks (committed blobs the
//!    index never adopted), then run recovery and show the leak drops
//!    to zero — the GC drainer's whole job.

use crate::experiments::runner::experiment_json;
use crate::tablefmt::{count, emit_json, ratio, Table};
use crate::Args;
use nvm_alloc::{GcOwner, HeapConfig, PmemHeap, PmemPtr, RotationPolicy};
use nvm_kv::prelude::*;
use nvm_metrics::Json;
use nvm_pmem::{run_with_crash, CrashPlan, CrashResolution, Pmem, Region, SimConfig, SimPmem};
use std::collections::HashMap;

/// SplitMix64 — the harness carries no RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A named value-size sampler driven by a splitmix state word.
pub type SizeDist = (&'static str, fn(&mut u64) -> usize);

/// The value-size distributions swept (name, sampler).
pub const DISTS: [SizeDist; 3] = [
    // Small values, uniform: everything lands in the first classes.
    ("uniform-16-64", |s| 16 + (splitmix(s) % 49) as usize),
    // memcached-style hot/cold split: 90% tiny, 10% half-KiB.
    ("hot-24-cold-512", |s| {
        if splitmix(s) % 10 < 9 {
            24
        } else {
            512
        }
    }),
    // Wide mix across most of the class table.
    ("mixed-16-1024", |s| 16 + (splitmix(s) % 1009) as usize),
];

/// The rotation policies compared.
pub const POLICIES: [(&str, RotationPolicy); 2] = [
    ("wear-aware", RotationPolicy::WearAware),
    ("first-fit", RotationPolicy::FirstFit),
];

/// One churn arm's measurements.
#[derive(Debug, Clone)]
pub struct HeapRow {
    pub dist: String,
    pub rotation: String,
    pub allocs: u64,
    pub frees: u64,
    pub gc_moves: u64,
    /// Bytes of live blob payload at the end of the churn.
    pub live_bytes: u64,
    /// Bytes of slots holding those blobs (>= live: internal frag).
    pub slot_bytes: u64,
    /// Allocated slot bytes / live blob bytes.
    pub frag: f64,
    /// Hottest slab's logical write count.
    pub max_slab_writes: u64,
    /// Mean logical writes per slab.
    pub mean_slab_writes: f64,
    /// max/mean — 1.0 is perfectly level.
    pub write_skew: f64,
    /// Media write-backs absorbed by the hottest line in the heap region.
    pub hottest_line: u32,
}

/// The volatile churn oracle as the heap's [`GcOwner`]: a blob is live
/// iff the oracle still maps its pointer to those bytes.
struct MapOwner<'a> {
    live: &'a mut HashMap<u64, Vec<u8>>,
}

impl<P: Pmem> GcOwner<P> for MapOwner<'_> {
    fn is_live(&mut self, _pm: &P, ptr: PmemPtr, blob: &[u8]) -> bool {
        self.live.get(&ptr.0).is_some_and(|b| b == blob)
    }

    fn repoint(&mut self, _pm: &mut P, old: PmemPtr, new: PmemPtr, blob: &[u8]) -> bool {
        if self.live.remove(&old.0).is_none() {
            return false;
        }
        self.live.insert(new.0, blob.to_vec());
        true
    }
}

/// Runs one (distribution, rotation) churn arm.
fn run_churn(
    dist: (&str, fn(&mut u64) -> usize),
    policy: (&str, RotationPolicy),
    churn_ops: usize,
    seed: u64,
) -> HeapRow {
    let config = HeapConfig::balanced(1 << 18);
    let size = PmemHeap::required_size(&config);
    let mut pm = SimPmem::new(size, SimConfig::fast_test());
    let region = Region::new(0, size);
    let mut heap = PmemHeap::create(&mut pm, region, &config).unwrap();
    heap.set_rotation(policy.1);
    let table = config.class_table().unwrap();

    let mut rng = seed ^ 0x4845_4150;
    let mut live: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut ptrs: Vec<u64> = Vec::new();
    let blob = |rng: &mut u64| {
        let len = dist.1(rng);
        vec![(splitmix(rng) & 0xFF) as u8; len]
    };

    // Fill to ~10% of the slot budget (by slot bytes, tracked off the
    // class table so the fill loop stays O(1) per alloc). The live set
    // must stay well under capacity: with a near-full heap the only
    // free slot is the one the last free opened, and *any* policy is
    // forced level — spare room is what gives rotation a choice.
    let total_slot_bytes: u64 = heap.frag_stats(&pm).total_slot_bytes;
    let mut filled = 0u64;
    while filled * 10 < total_slot_bytes {
        let b = blob(&mut rng);
        let Ok(ptr) = heap.alloc(&mut pm, &b) else {
            break; // one class exhausted before the global target: fine
        };
        filled += table.get(table.class_for(b.len()).unwrap()).slot_size;
        live.insert(ptr.0, b);
        ptrs.push(ptr.0);
    }

    // Churn: free a random live blob, allocate a fresh one — the
    // steady-state overwrite mix. Wear only counts from here.
    pm.reset_wear();
    for _ in 0..churn_ops {
        let victim = (splitmix(&mut rng) as usize) % ptrs.len();
        let old = ptrs.swap_remove(victim);
        live.remove(&old);
        heap.free(&mut pm, PmemPtr(old)).unwrap();
        let b = blob(&mut rng);
        if let Ok(ptr) = heap.alloc(&mut pm, &b) {
            live.insert(ptr.0, b);
            ptrs.push(ptr.0);
        }
    }

    // One full GC pass compacts whatever the churn left sparse.
    let mut owner = MapOwner { live: &mut live };
    heap.gc_full(&mut pm, &mut owner).unwrap();

    let fs = heap.frag_stats(&pm);
    let writes = heap.slab_writes();
    let max = writes.iter().copied().max().unwrap_or(0);
    let mean = writes.iter().sum::<u64>() as f64 / writes.len().max(1) as f64;
    let (_, hottest, _) = pm.wear_range_summary(region.off, region.len);
    let s = heap.stats();
    HeapRow {
        dist: dist.0.to_string(),
        rotation: policy.0.to_string(),
        allocs: s.allocs,
        frees: s.frees,
        gc_moves: s.gc_moves,
        live_bytes: fs.live_blob_bytes,
        slot_bytes: fs.allocated_slot_bytes,
        frag: if fs.live_blob_bytes > 0 {
            fs.allocated_slot_bytes as f64 / fs.live_blob_bytes as f64
        } else {
            0.0
        },
        max_slab_writes: max,
        mean_slab_writes: mean,
        write_skew: if mean > 0.0 { max as f64 / mean } else { 0.0 },
        hottest_line: hottest,
    }
}

/// All churn arms.
pub fn collect(args: &Args) -> Vec<HeapRow> {
    let churn = args.ops * 10;
    let mut out = Vec::new();
    for dist in DISTS {
        for policy in POLICIES {
            out.push(run_churn(dist, policy, churn, args.seed));
        }
    }
    out
}

/// One crash point in the recovery phase.
#[derive(Debug, Clone, Copy)]
pub struct LeakRow {
    /// Fraction of the batch's event span where the crash was injected.
    pub crash_frac: f64,
    /// Heap slots the torn image held beyond the entries that survived
    /// recovery (index repair can only *recover* committed entries, so
    /// the post-repair count is the honest baseline).
    pub leaked_slots: u64,
    /// Slot bytes recovery reclaimed (the leak, in bytes).
    pub leaked_bytes: u64,
    /// Unreachable blobs the recovery sweep freed.
    pub reclaimed: u64,
    /// Leaked slots after recovery — the acceptance bar is zero.
    pub leaked_after: u64,
}

/// Crashes a 64-item `set_batch` at several points and measures the
/// leak before and after recovery.
pub fn collect_leaks(args: &Args) -> Vec<LeakRow> {
    let builder = StoreBuilder::new().capacity(256, 64);
    let store0 = builder.create_sim(SimConfig::fast_test()).unwrap();
    let mut rng = args.seed ^ 0x4C45_414B;
    for i in 0..32u32 {
        store0
            .set(format!("warm-{i}").as_bytes(), &[i as u8; 24])
            .unwrap();
    }
    let pm0 = store0
        .into_pools()
        .ok()
        .expect("sole handle")
        .remove(0);

    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..64u32)
        .map(|i| {
            let len = 16 + (splitmix(&mut rng) % 120) as usize;
            (format!("batch-{i}").into_bytes(), vec![i as u8; len])
        })
        .collect();
    let refs: Vec<(&[u8], &[u8])> = items
        .iter()
        .map(|(k, v)| (k.as_slice(), v.as_slice()))
        .collect();

    // Dry runs on clones (the simulator is deterministic): learn how
    // many mutation events reopening costs, then the batch's own span.
    let open_span = {
        let pm = pm0.clone();
        let before = pm.events();
        let store = builder.open(vec![pm]).unwrap();
        let pools = store.into_pools().ok().expect("sole handle");
        pools[0].events() - before
    };
    let span = {
        let pm = pm0.clone();
        let base = pm.events() + open_span;
        let store = builder.open(vec![pm]).unwrap();
        store.set_batch(&refs).unwrap();
        let pools = store.into_pools().ok().expect("sole handle");
        pools[0].events() - base
    };

    [0.25, 0.5, 0.9]
        .into_iter()
        .map(|frac| {
            let mut pm = pm0.clone();
            let at = pm.events() + open_span + (span as f64 * frac) as u64;
            pm.set_crash_plan(Some(CrashPlan { at_event: at }));
            let store = builder.open(vec![pm]).unwrap();
            let _ = run_with_crash(|| store.set_batch(&refs).unwrap());
            let mut pm = store
                .into_pools()
                .ok()
                .expect("sole handle")
                .remove(0);
            pm.crash(CrashResolution::Random(args.seed ^ at));

            let store = builder.open(vec![pm]).unwrap();
            let (_, slots_before) = store.usage();
            let before = store.frag_stats();
            let reclaimed = store.recover();
            let (entries_after, slots_after) = store.usage();
            let after = store.frag_stats();
            LeakRow {
                crash_frac: frac,
                leaked_slots: slots_before.saturating_sub(entries_after),
                leaked_bytes: before
                    .allocated_slot_bytes
                    .saturating_sub(after.allocated_slot_bytes),
                reclaimed,
                leaked_after: slots_after.saturating_sub(entries_after),
            }
        })
        .collect()
}

/// The experiment's JSON metrics document: churn arms + recovery rows.
pub fn metrics_json(rows: &[HeapRow], leaks: &[LeakRow]) -> Json {
    let mut runs: Vec<Json> = rows
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("phase", "churn");
            j.insert("dist", r.dist.as_str());
            j.insert("rotation", r.rotation.as_str());
            let mut m = Json::obj();
            m.insert("allocs", r.allocs);
            m.insert("frees", r.frees);
            m.insert("gc_moves", r.gc_moves);
            m.insert("live_blob_bytes", r.live_bytes);
            m.insert("allocated_slot_bytes", r.slot_bytes);
            m.insert("frag_ratio", r.frag);
            m.insert("max_slab_writes", r.max_slab_writes);
            m.insert("mean_slab_writes", r.mean_slab_writes);
            m.insert("write_skew", r.write_skew);
            m.insert("hottest_line_writebacks", u64::from(r.hottest_line));
            j.insert("metrics", m);
            j
        })
        .collect();
    for l in leaks {
        let mut j = Json::obj();
        j.insert("phase", "recovery");
        j.insert("crash_frac", l.crash_frac);
        let mut m = Json::obj();
        m.insert("leaked_slots", l.leaked_slots);
        m.insert("leaked_bytes", l.leaked_bytes);
        m.insert("reclaimed", l.reclaimed);
        m.insert("leaked_slots_after_recovery", l.leaked_after);
        j.insert("metrics", m);
        runs.push(j);
    }
    experiment_json("heap", runs)
}

/// Builds the report tables (and writes CSV/JSON when `out_dir` is set).
pub fn run(args: &Args) -> Vec<Table> {
    let rows = collect(args);
    let leaks = collect_leaks(args);
    emit_json(args.out_dir.as_deref(), "heap", &metrics_json(&rows, &leaks));

    let mut churn = Table::new(
        format!(
            "Extension: value-heap churn ({} overwrite ops), fragmentation and wear per rotation policy",
            args.ops * 10
        ),
        &[
            "distribution",
            "rotation",
            "allocs",
            "frees",
            "gc moves",
            "live B",
            "slot B",
            "frag",
            "max slab writes",
            "write skew",
            "hottest line",
        ],
    );
    for r in &rows {
        churn.row(vec![
            r.dist.clone(),
            r.rotation.clone(),
            r.allocs.to_string(),
            r.frees.to_string(),
            r.gc_moves.to_string(),
            r.live_bytes.to_string(),
            r.slot_bytes.to_string(),
            ratio(r.frag),
            r.max_slab_writes.to_string(),
            count(r.write_skew),
            r.hottest_line.to_string(),
        ]);
    }

    let mut rec = Table::new(
        "Extension: leaked heap bytes from a crashed set_batch, before and after recovery",
        &[
            "crash at",
            "leaked slots",
            "leaked bytes",
            "reclaimed",
            "leaked after recovery",
        ],
    );
    for l in &leaks {
        rec.row(vec![
            format!("{:.0}%", l.crash_frac * 100.0),
            l.leaked_slots.to_string(),
            l.leaked_bytes.to_string(),
            l.reclaimed.to_string(),
            l.leaked_after.to_string(),
        ]);
    }
    vec![churn, rec]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<HeapRow> {
        collect(&Args {
            ops: 60,
            ..Args::default()
        })
    }

    /// Wear-aware rotation levels per-slab writes: for every
    /// distribution its hottest slab is no hotter than first-fit's, and
    /// the skew stays bounded.
    #[test]
    fn wear_aware_rotation_bounds_slab_skew() {
        let rows = rows();
        for dist in DISTS {
            let get = |rot: &str| {
                rows.iter()
                    .find(|r| r.dist == dist.0 && r.rotation == rot)
                    .unwrap_or_else(|| panic!("{}/{rot} missing", dist.0))
            };
            let wa = get("wear-aware");
            let ff = get("first-fit");
            assert!(
                wa.max_slab_writes <= ff.max_slab_writes,
                "{}: wear-aware hottest slab {} > first-fit {}",
                dist.0,
                wa.max_slab_writes,
                ff.max_slab_writes
            );
            assert!(
                wa.write_skew <= ff.write_skew + 1e-9,
                "{}: wear-aware skew {} > first-fit {}",
                dist.0,
                wa.write_skew,
                ff.write_skew
            );
        }
    }

    /// Fragmentation is internal only (slot rounding): the ratio stays
    /// under the 1.25 class growth factor plus slack for the 80 B floor
    /// on tiny values.
    #[test]
    fn churn_tracks_live_bytes() {
        for r in rows() {
            assert!(r.allocs > 0 && r.frees > 0, "{}: no churn ran", r.dist);
            assert!(
                r.slot_bytes >= r.live_bytes,
                "{}: slots smaller than payload",
                r.dist
            );
        }
    }

    /// The recovery phase's acceptance bar: a crashed batch leaks, and
    /// recovery reclaims every leaked byte.
    #[test]
    fn recovery_reclaims_all_leaked_bytes() {
        let leaks = collect_leaks(&Args::default());
        assert!(
            leaks.iter().any(|l| l.leaked_slots > 0),
            "no crash point produced a leak; the phase measures nothing"
        );
        for l in &leaks {
            assert_eq!(
                l.leaked_after, 0,
                "crash at {:.0}%: leak survived recovery",
                l.crash_frac * 100.0
            );
            assert!(
                l.reclaimed >= l.leaked_slots,
                "crash at {:.0}%: reclaimed {} < leaked {}",
                l.crash_frac * 100.0,
                l.reclaimed,
                l.leaked_slots
            );
        }
    }
}
