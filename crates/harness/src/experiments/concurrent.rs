//! Concurrent throughput — lock-free reads *and* lock-free CAS writes.
//!
//! Two sweeps over a [`ShardedGroupHash`]:
//!
//! * **Readers** (`concurrent.csv`): pre-populate, then sweep
//!   reader-thread counts with and without a background writer. `get`
//!   takes no lock — an optimistic probe through a
//!   [`GroupReadView`](group_hash::GroupReadView) validated by the
//!   shard's seqlock sequence.
//! * **Writers** (`concurrent_writers.csv`): sweep writer-thread counts
//!   W ∈ {1, 2, 4, 8} of plain inserts over disjoint key ranges — each
//!   commit a lock-free bitmap-word CAS — plus one arm that starts with
//!   deliberately tiny shards so **online expansion** runs mid-stream.
//!   Per-op latency is recorded (p50/p95/p99) alongside the CAS-failure,
//!   latch-wait and migration-step counters.
//!
//! Invariants checked on every run (and surfaced as counters so the
//! acceptance tests can pin them to zero):
//!
//! * no **phantom miss** — every pre-populated key must stay visible even
//!   mid-update, because updates never clear the commit bit;
//! * no **torn value** — values encode `(key << 20) | round`, so a reader
//!   observing a value whose key bits mismatch caught a half-written
//!   in-place update that the seqlock should have rejected;
//! * no **lost update** — after the writer sweep every inserted key must
//!   hold exactly the value its writer committed, expansions included;
//! * single-writer arms must finish with **zero CAS failures** (nobody to
//!   lose a CAS against).

use crate::experiments::runner::experiment_json;
use crate::tablefmt::{count, emit_json, Table};
use crate::{Args, TraceKind};
use group_hash::{GroupHashConfig, ShardedGroupHash};
use nvm_metrics::{Histogram, Json};
use nvm_pmem::{SimConfig, SimPmem};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Reader thread counts swept.
pub const READERS: [usize; 4] = [1, 2, 4, 8];
/// Writer thread counts swept (0 isolates the uncontended read path).
pub const WRITERS: [usize; 2] = [0, 1];
/// Writer thread counts swept in the write-scaling arms.
pub const WRITER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Shards in the table under test.
pub const SHARDS: usize = 8;

/// Value encoding: the key in the high bits, the writer's round in the
/// low [`ROUND_BITS`], so readers can detect torn values.
const ROUND_BITS: u32 = 20;

fn encode(key: u64, round: u64) -> u64 {
    (key << ROUND_BITS) | (round & ((1 << ROUND_BITS) - 1))
}

/// One (readers, writers) arm: wall-clock read throughput and the
/// concurrency event counters accumulated during the arm.
#[derive(Debug, Clone, Copy)]
pub struct RunData {
    pub readers: usize,
    pub writers: usize,
    /// Total lookups completed across all reader threads.
    pub reads: u64,
    /// Lookups that returned a missing key (must stay 0).
    pub phantom_misses: u64,
    /// Lookups that returned a value with mismatched key bits (must stay 0).
    pub torn_values: u64,
    /// In-place updates completed by the writer threads.
    pub writes: u64,
    /// Wall-clock duration of the read phase.
    pub wall_ns: u64,
    pub seqlock_retries: u64,
    pub lock_waits: u64,
    pub cas_failures: u64,
    pub latch_waits: u64,
    pub migration_steps: u64,
}

impl RunData {
    /// Aggregate lookups per second across all reader threads.
    pub fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Per-thread lookup rate — flat across the sweep iff reads scale.
    pub fn reads_per_thread_per_sec(&self) -> f64 {
        self.reads_per_sec() / self.readers.max(1) as f64
    }
}

/// Builds the table, pre-populates `n_keys`, then runs `readers` lookup
/// threads (each doing `reads_per_thread` gets over the key space) while
/// `writers` threads cycle in-place updates until the readers finish.
fn run_one(
    readers: usize,
    writers: usize,
    per_level: u64,
    group_size: u64,
    seed: u64,
    reads_per_thread: usize,
) -> RunData {
    let cfg = GroupHashConfig::new(per_level, group_size).with_seed(seed);
    let t: ShardedGroupHash<SimPmem, u64, u64> =
        ShardedGroupHash::create(SHARDS, cfg, |_, size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap();

    // Fill to ~25% of total capacity so probes stay representative
    // without insert fallback noise.
    let n_keys = (per_level * SHARDS as u64 * 2 / 4).min(1u64 << (64 - ROUND_BITS));
    for k in 0..n_keys {
        t.insert(k, encode(k, 0)).unwrap();
    }

    let stop = AtomicBool::new(false);
    let writes = AtomicU64::new(0);
    let phantom = AtomicU64::new(0);
    let torn = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..writers {
            s.spawn(|| {
                let mut round = 1u64;
                let mut done = 0u64;
                'outer: loop {
                    for k in 0..n_keys {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        assert!(t.update_in_place(&k, encode(k, round)));
                        done += 1;
                    }
                    round += 1;
                }
                writes.fetch_add(done, Ordering::Relaxed);
            });
        }
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let (phantom, torn) = (&phantom, &torn);
                let t = &t;
                s.spawn(move || {
                    // Each reader walks the key space at its own odd
                    // stride, so threads do not probe in lockstep.
                    let stride = 2 * r as u64 + 1;
                    let mut k = r as u64 % n_keys.max(1);
                    for _ in 0..reads_per_thread {
                        match t.get(&k) {
                            None => {
                                phantom.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(v) if v >> ROUND_BITS != k => {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(_) => {}
                        }
                        k = (k + stride) % n_keys.max(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let wall_ns = start.elapsed().as_nanos() as u64;

    let c = t.concurrency();
    t.check_consistency().unwrap();
    RunData {
        readers,
        writers,
        reads: (readers * reads_per_thread) as u64,
        phantom_misses: phantom.load(Ordering::Relaxed),
        torn_values: torn.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        wall_ns,
        seqlock_retries: c.seqlock_retries,
        lock_waits: c.lock_waits,
        cas_failures: c.cas_failures,
        latch_waits: c.latch_waits,
        migration_steps: c.migration_steps,
    }
}

/// One writer-scaling arm: wall-clock insert throughput, per-op latency
/// quantiles, and the concurrency event counters for the arm.
#[derive(Debug, Clone, Copy)]
pub struct WriterRunData {
    pub writers: usize,
    /// Whether this arm started under-provisioned so that online
    /// expansion had to run mid-stream.
    pub expansion: bool,
    /// Total inserts committed across all writer threads.
    pub inserts: u64,
    /// Keys whose post-run value differs from what their writer committed
    /// (must stay 0 — a lost or torn update).
    pub lost_updates: u64,
    /// Wall-clock duration of the insert phase.
    pub wall_ns: u64,
    /// Per-insert latency quantiles (nanoseconds), merged across threads.
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
    pub cas_failures: u64,
    pub latch_waits: u64,
    pub migration_steps: u64,
    pub seqlock_retries: u64,
    pub lock_waits: u64,
}

impl WriterRunData {
    /// Aggregate inserts per second across all writer threads.
    pub fn inserts_per_sec(&self) -> f64 {
        self.inserts as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// Runs `writers` threads inserting disjoint key ranges (`total` inserts
/// split evenly), each commit a lock-free bitmap-word CAS. Values encode
/// `(key, writer)` so the post-run sweep detects any lost or torn update
/// exactly. `per_level` sizes the shards: pass a value too small for
/// `total` and the arm exercises online expansion mid-stream.
fn run_writers_one(
    writers: usize,
    per_level: u64,
    group_size: u64,
    seed: u64,
    total: u64,
    expansion: bool,
) -> WriterRunData {
    let cfg = GroupHashConfig::new(per_level, group_size).with_seed(seed);
    let t: ShardedGroupHash<SimPmem, u64, u64> =
        ShardedGroupHash::create(SHARDS, cfg, |_, size| {
            SimPmem::new(size, SimConfig::fast_test())
        })
        .unwrap();

    let per_thread = total / writers as u64;
    let start = Instant::now();
    // `Histogram` is Cell-based (not Sync), so each thread records into
    // its own and the quantiles are merged after the join.
    let hists: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers as u64)
            .map(|w| {
                let t = &t;
                s.spawn(move || {
                    let h = Histogram::latency_ns();
                    let base = w * per_thread;
                    for k in base..base + per_thread {
                        let t0 = Instant::now();
                        t.insert(k, encode(k, w)).unwrap();
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                    h
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ns = start.elapsed().as_nanos() as u64;

    // Finish any drain still pending so the verification sweep also covers
    // the fully-migrated end state.
    for shard in 0..t.shard_count() {
        while t.expand_step(shard, 1024) {}
    }

    let mut lost = 0u64;
    for w in 0..writers as u64 {
        let base = w * per_thread;
        for k in base..base + per_thread {
            if t.get(&k) != Some(encode(k, w)) {
                lost += 1;
            }
        }
    }
    t.check_consistency().unwrap();

    let merged = Histogram::latency_ns();
    for h in &hists {
        merged.merge(h);
    }
    let c = t.concurrency();
    WriterRunData {
        writers,
        expansion,
        inserts: per_thread * writers as u64,
        lost_updates: lost,
        wall_ns,
        p50_ns: merged.p50(),
        p95_ns: merged.p95(),
        p99_ns: merged.p99(),
        cas_failures: c.cas_failures,
        latch_waits: c.latch_waits,
        migration_steps: c.migration_steps,
        seqlock_retries: c.seqlock_retries,
        lock_waits: c.lock_waits,
    }
}

/// All writer-scaling arms: W ∈ [`WRITER_COUNTS`] sized to fit without
/// growth, plus one under-provisioned arm that must expand mid-stream.
pub fn collect_writers(args: &Args) -> Vec<WriterRunData> {
    let cells = args.cells_for(TraceKind::RandomNum);
    let per_level = (cells / (2 * SHARDS as u64)).max(args.group_size);
    let group_size = args.group_size.min(per_level);
    // Same total work per arm (half the two-level capacity → ~50% fill),
    // so arm wall-clocks compare directly.
    let total = per_level * SHARDS as u64;
    let mut out = Vec::new();
    for &writers in &WRITER_COUNTS {
        out.push(run_writers_one(
            writers, per_level, group_size, args.seed, total, false,
        ));
    }
    // Expansion arm: shards provisioned at 1/8 of the keys they will
    // receive, so every shard doubles online (several times) while the
    // writers are still streaming inserts.
    let small = (per_level / 8).max(group_size);
    out.push(run_writers_one(4, small, group_size, args.seed, total, true));
    out
}

/// The writer sweep's JSON metrics document, including the W=4 over W=1
/// throughput ratio. (Recorded, not asserted: on a single-core host the
/// arms time-slice one CPU and the ratio hovers near 1.)
pub fn writer_metrics_json(data: &[WriterRunData]) -> Json {
    let runs = data
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("writers", r.writers as u64);
            j.insert("expansion", r.expansion as u64);
            j.insert("inserts", r.inserts);
            j.insert("lost_updates", r.lost_updates);
            j.insert("wall_ns", r.wall_ns);
            j.insert("inserts_per_sec", r.inserts_per_sec());
            j.insert("p50_ns", r.p50_ns);
            j.insert("p95_ns", r.p95_ns);
            j.insert("p99_ns", r.p99_ns);
            j.insert("cas_failures", r.cas_failures);
            j.insert("latch_waits", r.latch_waits);
            j.insert("migration_steps", r.migration_steps);
            j.insert("seqlock_retries", r.seqlock_retries);
            j.insert("lock_waits", r.lock_waits);
            j
        })
        .collect();
    let mut doc = experiment_json("concurrent_writers", runs);
    let rate = |w: usize| {
        data.iter()
            .find(|r| r.writers == w && !r.expansion)
            .map(WriterRunData::inserts_per_sec)
    };
    if let (Some(w1), Some(w4)) = (rate(1), rate(4)) {
        doc.insert("speedup_w4_over_w1", w4 / w1.max(1e-9));
    }
    doc
}

/// All (readers, writers) arms.
pub fn collect(args: &Args) -> Vec<RunData> {
    let cells = args.cells_for(TraceKind::RandomNum);
    // Split the total budget over both levels of all shards.
    let per_level = (cells / (2 * SHARDS as u64)).max(args.group_size);
    let group_size = args.group_size.min(per_level);
    // `--ops` scales the per-thread read count; the default (1000) gives
    // 64k lookups per reader — enough for a stable wall-clock rate
    // without making the sweep slow.
    let reads_per_thread = args.ops.saturating_mul(64);
    let mut out = Vec::new();
    for &writers in &WRITERS {
        for &readers in &READERS {
            out.push(run_one(
                readers,
                writers,
                per_level,
                group_size,
                args.seed,
                reads_per_thread,
            ));
        }
    }
    out
}

/// The experiment's JSON metrics document: one run per arm.
pub fn metrics_json(data: &[RunData]) -> Json {
    let runs = data
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("readers", r.readers as u64);
            j.insert("writers", r.writers as u64);
            j.insert("reads", r.reads);
            j.insert("phantom_misses", r.phantom_misses);
            j.insert("torn_values", r.torn_values);
            j.insert("writes", r.writes);
            j.insert("wall_ns", r.wall_ns);
            j.insert("reads_per_sec", r.reads_per_sec());
            j.insert("reads_per_thread_per_sec", r.reads_per_thread_per_sec());
            j.insert("seqlock_retries", r.seqlock_retries);
            j.insert("lock_waits", r.lock_waits);
            j.insert("cas_failures", r.cas_failures);
            j.insert("latch_waits", r.latch_waits);
            j.insert("migration_steps", r.migration_steps);
            j
        })
        .collect();
    experiment_json("concurrent", runs)
}

/// Builds the report tables (and writes CSV/JSON when `out_dir` is set).
///
/// The writer sweep's table is emitted here under its own name
/// (`concurrent_writers.csv`) rather than returned, because the binaries
/// emit every returned table under the experiment's single name.
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "concurrent", &metrics_json(&data));

    let wdata = collect_writers(args);
    emit_json(
        args.out_dir.as_deref(),
        "concurrent_writers",
        &writer_metrics_json(&wdata),
    );
    let mut wtable = Table::new(
        "Concurrent writes: lock-free CAS insert scaling and online expansion",
        &[
            "writers",
            "expansion",
            "inserts",
            "inserts/s",
            "p50 ns",
            "p95 ns",
            "p99 ns",
            "cas failures",
            "latch waits",
            "migration steps",
            "lost updates",
        ],
    );
    for r in &wdata {
        wtable.row(vec![
            r.writers.to_string(),
            if r.expansion { "yes" } else { "no" }.to_string(),
            count(r.inserts as f64),
            count(r.inserts_per_sec()),
            count(r.p50_ns),
            count(r.p95_ns),
            count(r.p99_ns),
            count(r.cas_failures as f64),
            count(r.latch_waits as f64),
            count(r.migration_steps as f64),
            count(r.lost_updates as f64),
        ]);
    }
    wtable.emit(args.out_dir.as_deref(), "concurrent_writers");

    let mut detail = Table::new(
        "Concurrent reads: lock-free get throughput vs reader/writer mix",
        &[
            "readers",
            "writers",
            "reads",
            "reads/s",
            "reads/s/thread",
            "writes",
            "seqlock retries",
            "lock waits",
        ],
    );
    for r in &data {
        detail.row(vec![
            r.readers.to_string(),
            r.writers.to_string(),
            count(r.reads as f64),
            count(r.reads_per_sec()),
            count(r.reads_per_thread_per_sec()),
            count(r.writes as f64),
            count(r.seqlock_retries as f64),
            count(r.lock_waits as f64),
        ]);
    }
    vec![detail]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: every arm completes with zero phantom misses
    /// and zero torn values, and the writer-free arms never retry (no
    /// writer ever makes a sequence odd).
    #[test]
    fn reads_are_never_phantom_or_torn() {
        let args = Args {
            cells_log2: Some(13),
            ops: 50,
            ..Args::default()
        };
        let data = collect(&args);
        assert_eq!(data.len(), READERS.len() * WRITERS.len());
        for r in &data {
            assert_eq!(r.phantom_misses, 0, "{}r/{}w lost a key", r.readers, r.writers);
            assert_eq!(r.torn_values, 0, "{}r/{}w saw a torn value", r.readers, r.writers);
            assert_eq!(r.reads, (r.readers * 50 * 64) as u64);
            if r.writers == 0 {
                assert_eq!(r.seqlock_retries, 0, "retry without any writer");
            } else {
                assert!(r.writes > 0, "writer made no progress");
            }
        }
    }

    /// The writer sweep's acceptance bar: no arm loses an update, the
    /// single-writer arm never loses a CAS or falls to the exclusive
    /// latch, and the under-provisioned arm really migrated online.
    #[test]
    fn writers_never_lose_updates_and_single_writer_never_contends() {
        let args = Args {
            cells_log2: Some(13),
            ops: 50,
            ..Args::default()
        };
        let data = collect_writers(&args);
        assert_eq!(data.len(), WRITER_COUNTS.len() + 1);
        for r in &data {
            assert_eq!(
                r.lost_updates, 0,
                "{}w{} lost an update",
                r.writers,
                if r.expansion { " (expansion)" } else { "" },
            );
            assert!(r.inserts > 0);
        }
        let w1 = &data[0];
        assert_eq!(w1.writers, 1);
        assert_eq!(w1.cas_failures, 0, "single writer lost a CAS");
        assert_eq!(w1.latch_waits, 0, "single writer fell off the fast path");
        assert_eq!(w1.migration_steps, 0, "sized arm should not migrate");
        let exp = data.last().unwrap();
        assert!(exp.expansion);
        assert!(exp.migration_steps > 0, "expansion arm never migrated");
    }
}
