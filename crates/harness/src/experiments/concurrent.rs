//! Concurrent read throughput — lock-free shard lookups under writer load.
//!
//! The sharded table serializes writers through per-shard mutexes but
//! serves `get` without any lock: an optimistic probe through a
//! [`GroupReadView`](group_hash::GroupReadView) validated by the shard's
//! seqlock sequence. This experiment pre-populates a `ShardedGroupHash`
//! and sweeps reader-thread counts with and without a background writer,
//! reporting wall-clock lookup throughput plus the seqlock-retry and
//! lock-wait event counters.
//!
//! Two invariants are checked on every single read (and surfaced as
//! counters so the acceptance test can pin them to zero):
//!
//! * no **phantom miss** — every pre-populated key must stay visible even
//!   mid-update, because updates never clear the commit bit;
//! * no **torn value** — values encode `(key << 20) | round`, so a reader
//!   observing a value whose key bits mismatch caught a half-written
//!   in-place update that the seqlock should have rejected.

use crate::experiments::runner::experiment_json;
use crate::tablefmt::{count, emit_json, Table};
use crate::{Args, TraceKind};
use group_hash::{GroupHash, GroupHashConfig, ShardedGroupHash};
use nvm_metrics::Json;
use nvm_pmem::{SimConfig, SimPmem};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Reader thread counts swept.
pub const READERS: [usize; 4] = [1, 2, 4, 8];
/// Writer thread counts swept (0 isolates the uncontended read path).
pub const WRITERS: [usize; 2] = [0, 1];
/// Shards in the table under test.
pub const SHARDS: usize = 8;

/// Value encoding: the key in the high bits, the writer's round in the
/// low [`ROUND_BITS`], so readers can detect torn values.
const ROUND_BITS: u32 = 20;

fn encode(key: u64, round: u64) -> u64 {
    (key << ROUND_BITS) | (round & ((1 << ROUND_BITS) - 1))
}

/// One (readers, writers) arm: wall-clock read throughput and the
/// concurrency event counters accumulated during the arm.
#[derive(Debug, Clone, Copy)]
pub struct RunData {
    pub readers: usize,
    pub writers: usize,
    /// Total lookups completed across all reader threads.
    pub reads: u64,
    /// Lookups that returned a missing key (must stay 0).
    pub phantom_misses: u64,
    /// Lookups that returned a value with mismatched key bits (must stay 0).
    pub torn_values: u64,
    /// In-place updates completed by the writer threads.
    pub writes: u64,
    /// Wall-clock duration of the read phase.
    pub wall_ns: u64,
    pub seqlock_retries: u64,
    pub lock_waits: u64,
}

impl RunData {
    /// Aggregate lookups per second across all reader threads.
    pub fn reads_per_sec(&self) -> f64 {
        self.reads as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }

    /// Per-thread lookup rate — flat across the sweep iff reads scale.
    pub fn reads_per_thread_per_sec(&self) -> f64 {
        self.reads_per_sec() / self.readers.max(1) as f64
    }
}

/// Builds the table, pre-populates `n_keys`, then runs `readers` lookup
/// threads (each doing `reads_per_thread` gets over the key space) while
/// `writers` threads cycle in-place updates until the readers finish.
fn run_one(
    readers: usize,
    writers: usize,
    per_level: u64,
    group_size: u64,
    seed: u64,
    reads_per_thread: usize,
) -> RunData {
    let cfg = GroupHashConfig::new(per_level, group_size).with_seed(seed);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let t: ShardedGroupHash<SimPmem, u64, u64> =
        ShardedGroupHash::create(SHARDS, cfg, |_| SimPmem::new(size, SimConfig::fast_test()))
            .unwrap();

    // Fill to ~25% of total capacity so probes stay representative
    // without insert fallback noise.
    let n_keys = (per_level * SHARDS as u64 * 2 / 4).min(1u64 << (64 - ROUND_BITS));
    for k in 0..n_keys {
        t.insert(k, encode(k, 0)).unwrap();
    }

    let stop = AtomicBool::new(false);
    let writes = AtomicU64::new(0);
    let phantom = AtomicU64::new(0);
    let torn = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..writers {
            s.spawn(|| {
                let mut round = 1u64;
                let mut done = 0u64;
                'outer: loop {
                    for k in 0..n_keys {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        assert!(t.update_in_place(&k, encode(k, round)));
                        done += 1;
                    }
                    round += 1;
                }
                writes.fetch_add(done, Ordering::Relaxed);
            });
        }
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let (phantom, torn) = (&phantom, &torn);
                let t = &t;
                s.spawn(move || {
                    // Each reader walks the key space at its own odd
                    // stride, so threads do not probe in lockstep.
                    let stride = 2 * r as u64 + 1;
                    let mut k = r as u64 % n_keys.max(1);
                    for _ in 0..reads_per_thread {
                        match t.get(&k) {
                            None => {
                                phantom.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(v) if v >> ROUND_BITS != k => {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(_) => {}
                        }
                        k = (k + stride) % n_keys.max(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let wall_ns = start.elapsed().as_nanos() as u64;

    let c = t.concurrency();
    t.check_consistency().unwrap();
    RunData {
        readers,
        writers,
        reads: (readers * reads_per_thread) as u64,
        phantom_misses: phantom.load(Ordering::Relaxed),
        torn_values: torn.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        wall_ns,
        seqlock_retries: c.seqlock_retries,
        lock_waits: c.lock_waits,
    }
}

/// All (readers, writers) arms.
pub fn collect(args: &Args) -> Vec<RunData> {
    let cells = args.cells_for(TraceKind::RandomNum);
    // Split the total budget over both levels of all shards.
    let per_level = (cells / (2 * SHARDS as u64)).max(args.group_size);
    let group_size = args.group_size.min(per_level);
    // `--ops` scales the per-thread read count; the default (1000) gives
    // 64k lookups per reader — enough for a stable wall-clock rate
    // without making the sweep slow.
    let reads_per_thread = args.ops.saturating_mul(64);
    let mut out = Vec::new();
    for &writers in &WRITERS {
        for &readers in &READERS {
            out.push(run_one(
                readers,
                writers,
                per_level,
                group_size,
                args.seed,
                reads_per_thread,
            ));
        }
    }
    out
}

/// The experiment's JSON metrics document: one run per arm.
pub fn metrics_json(data: &[RunData]) -> Json {
    let runs = data
        .iter()
        .map(|r| {
            let mut j = Json::obj();
            j.insert("readers", r.readers as u64);
            j.insert("writers", r.writers as u64);
            j.insert("reads", r.reads);
            j.insert("phantom_misses", r.phantom_misses);
            j.insert("torn_values", r.torn_values);
            j.insert("writes", r.writes);
            j.insert("wall_ns", r.wall_ns);
            j.insert("reads_per_sec", r.reads_per_sec());
            j.insert("reads_per_thread_per_sec", r.reads_per_thread_per_sec());
            j.insert("seqlock_retries", r.seqlock_retries);
            j.insert("lock_waits", r.lock_waits);
            j
        })
        .collect();
    experiment_json("concurrent", runs)
}

/// Builds the report table (and writes CSV/JSON when `out_dir` is set).
pub fn run(args: &Args) -> Vec<Table> {
    let data = collect(args);
    emit_json(args.out_dir.as_deref(), "concurrent", &metrics_json(&data));

    let mut detail = Table::new(
        "Concurrent reads: lock-free get throughput vs reader/writer mix",
        &[
            "readers",
            "writers",
            "reads",
            "reads/s",
            "reads/s/thread",
            "writes",
            "seqlock retries",
            "lock waits",
        ],
    );
    for r in &data {
        detail.row(vec![
            r.readers.to_string(),
            r.writers.to_string(),
            count(r.reads as f64),
            count(r.reads_per_sec()),
            count(r.reads_per_thread_per_sec()),
            count(r.writes as f64),
            count(r.seqlock_retries as f64),
            count(r.lock_waits as f64),
        ]);
    }
    vec![detail]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance bar: every arm completes with zero phantom misses
    /// and zero torn values, and the writer-free arms never retry (no
    /// writer ever makes a sequence odd).
    #[test]
    fn reads_are_never_phantom_or_torn() {
        let args = Args {
            cells_log2: Some(13),
            ops: 50,
            ..Args::default()
        };
        let data = collect(&args);
        assert_eq!(data.len(), READERS.len() * WRITERS.len());
        for r in &data {
            assert_eq!(r.phantom_misses, 0, "{}r/{}w lost a key", r.readers, r.writers);
            assert_eq!(r.torn_values, 0, "{}r/{}w saw a torn value", r.readers, r.writers);
            assert_eq!(r.reads, (r.readers * 50 * 64) as u64);
            if r.writers == 0 {
                assert_eq!(r.seqlock_retries, 0, "retry without any writer");
            } else {
                assert!(r.writes > 0, "writer made no progress");
            }
        }
    }
}
