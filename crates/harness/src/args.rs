//! A tiny flag parser (no CLI dependency needed for seven flags).

use crate::schemes::SchemeKind;
use std::path::PathBuf;

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct Args {
    /// log2 of the total cell budget; `None` = per-experiment default.
    pub cells_log2: Option<u32>,
    /// Measured operations per phase (paper: 1000).
    pub ops: usize,
    /// Use the paper's full table sizes (2^23–2^25 cells).
    pub full: bool,
    /// Base RNG/hash seed.
    pub seed: u64,
    /// Directory for CSV output (created if missing); `None` = stdout only.
    pub out_dir: Option<PathBuf>,
    /// Group size for group hashing (paper default 256).
    pub group_size: u64,
    /// Explicit scheme cast (`--schemes linear,iceberg,...`); `None`
    /// leaves each experiment its default cast.
    pub schemes: Option<Vec<SchemeKind>>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            cells_log2: None,
            ops: 1000,
            full: false,
            seed: 0x1C99_2018, // ICPP 2018
            out_dir: None,
            group_size: 256,
            schemes: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args`, exiting with usage on error or `--help`.
    pub fn parse() -> Args {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{}", Self::usage());
                std::process::exit(if msg == "help" { 0 } else { 2 });
            }
        }
    }

    /// Usage text.
    pub fn usage() -> &'static str {
        "options:\n  \
         --cells-log2 <N>   total cell budget = 2^N (default: per experiment)\n  \
         --ops <N>          measured ops per phase (default 1000)\n  \
         --full             paper-size tables (2^23..2^25 cells; slow)\n  \
         --seed <N>         base seed (default fixed)\n  \
         --out-dir <DIR>    also write CSV files there\n  \
         --group-size <N>   group hashing group size (default 256)\n  \
         --schemes <LIST>   comma-separated scheme cast, e.g. iceberg,group\n  \
                            (labels: linear linear-L PFHT PFHT-L path path-L\n  \
                            iceberg iceberg-L group group-2c)\n  \
         --help             this text"
    }

    /// Parses an explicit argument list (testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut val = |name: &str| {
                it.next()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match flag.as_str() {
                "--cells-log2" => {
                    out.cells_log2 = Some(
                        val("--cells-log2")?
                            .parse()
                            .map_err(|e| format!("--cells-log2: {e}"))?,
                    )
                }
                "--ops" => {
                    out.ops = val("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?
                }
                "--full" => out.full = true,
                "--seed" => {
                    out.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
                }
                "--out-dir" => out.out_dir = Some(PathBuf::from(val("--out-dir")?)),
                "--schemes" => {
                    let list = val("--schemes")?;
                    let cast = list
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| {
                            SchemeKind::from_label(s.trim())
                                .ok_or_else(|| format!("--schemes: unknown scheme {s:?}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    if cast.is_empty() {
                        return Err("--schemes: empty list".into());
                    }
                    out.schemes = Some(cast);
                }
                "--group-size" => {
                    out.group_size = val("--group-size")?
                        .parse()
                        .map_err(|e| format!("--group-size: {e}"))?
                }
                "--help" | "-h" => return Err("help".into()),
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if !out.group_size.is_power_of_two() {
            return Err("--group-size must be a power of two".into());
        }
        Ok(out)
    }

    /// The scheme cast for an experiment: `--schemes` when given, the
    /// experiment's `default` otherwise.
    pub fn cast(&self, default: &[SchemeKind]) -> Vec<SchemeKind> {
        self.schemes
            .clone()
            .unwrap_or_else(|| default.to_vec())
    }

    /// The cell budget for `trace`, honouring `--cells-log2`/`--full`.
    pub fn cells_for(&self, trace: crate::TraceKind) -> u64 {
        let log2 = self
            .cells_log2
            .unwrap_or(if self.full { trace.paper_cells_log2() } else { 18 });
        1u64 << log2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Result<Args, String> {
        Args::try_parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.ops, 1000);
        assert_eq!(a.group_size, 256);
        assert!(!a.full);
        assert_eq!(a.cells_for(crate::TraceKind::RandomNum), 1 << 18);
    }

    #[test]
    fn full_sizes() {
        let a = parse(&["--full"]).unwrap();
        assert_eq!(a.cells_for(crate::TraceKind::RandomNum), 1 << 23);
        assert_eq!(a.cells_for(crate::TraceKind::Fingerprint), 1 << 25);
    }

    #[test]
    fn explicit_cells_override() {
        let a = parse(&["--full", "--cells-log2", "12"]).unwrap();
        assert_eq!(a.cells_for(crate::TraceKind::BagOfWords), 1 << 12);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--ops", "50", "--seed", "9", "--out-dir", "/tmp/x", "--group-size", "128",
        ])
        .unwrap();
        assert_eq!(a.ops, 50);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(a.group_size, 128);
    }

    #[test]
    fn rejects_unknown_and_bad_values() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--ops"]).is_err());
        assert!(parse(&["--ops", "abc"]).is_err());
        assert!(parse(&["--group-size", "100"]).is_err());
        assert!(parse(&["--schemes", "nonesuch"]).is_err());
        assert!(parse(&["--schemes", ""]).is_err());
    }

    #[test]
    fn schemes_filter_parses_labels() {
        let a = parse(&["--schemes", "iceberg,group, PFHT-L"]).unwrap();
        assert_eq!(
            a.schemes,
            Some(vec![SchemeKind::Iceberg, SchemeKind::Group, SchemeKind::PfhtL])
        );
        // The filter overrides an experiment's default cast; absent, the
        // default stands.
        assert_eq!(a.cast(&SchemeKind::CONSISTENT).len(), 3);
        let d = parse(&[]).unwrap();
        assert_eq!(d.cast(&SchemeKind::CONSISTENT), SchemeKind::CONSISTENT.to_vec());
    }
}
