#!/usr/bin/env bash
# Local CI gate — run before every commit. Mirrors what a hosted CI
# would run, strictest flags on: docs and lints are errors, not noise.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo test -q (group-hash, instrument feature)"
cargo test -q -p group-hash --features instrument

echo "==> cargo test -q (nvm-table conformance, instrument features)"
cargo test -q -p nvm-table --features group-hash/instrument,nvm-baselines/instrument

echo "==> cargo test -q (batch conformance: prefix durability at every crash point)"
cargo test -q -p nvm-table --features group-hash/instrument,nvm-baselines/instrument \
  --test conformance batch

echo "==> layering lint (no upward dependencies)"
# The crate layering is probe-plan/cell-store toolkit (nvm-table) ->
# schemes (group-hash, nvm-baselines) -> harness (gh-harness). Imports
# must only point down the stack, and probe-plan modules are pure
# geometry — they never touch pmem.
# Comment lines (including doctests in `///` blocks) are exempt: they
# cannot create a compile-time dependency, and doctests legitimately
# drive the trait through a real scheme the same way tests/ do via
# dev-dependencies.
strip_comments() { grep -vE ':[0-9]+:[[:space:]]*//' || true; }
lint_fail=0
if grep -rn "group_hash\|nvm_baselines\|gh_harness" crates/table/src \
    | strip_comments | grep .; then
  echo "layering violation: nvm-table must not import scheme or harness crates" >&2
  lint_fail=1
fi
if grep -rn "gh_harness" crates/core/src crates/baselines/src \
    | strip_comments | grep .; then
  echo "layering violation: scheme crates must not import the harness" >&2
  lint_fail=1
fi
if grep -rn "nvm_pmem" crates/table/src/probe.rs crates/table/src/meta.rs \
    crates/core/src/table/probe.rs \
    | strip_comments | grep .; then
  echo "layering violation: probe-plan/metadata modules must stay I/O-free (found nvm_pmem)" >&2
  lint_fail=1
fi
# Read-path modules (read-only view, probe plans, fingerprint scans, and
# the vectorized batch-probe helpers — Selection / match_bits_many in the
# table toolkit, get_batch resolve + prefetch in the read view) may name
# only the read half of the pool surface (PmemRead); naming the
# write-capable Pmem trait there would let a "read" mutate.
if grep -rnE '\bPmem\b' \
    crates/core/src/table/readview.rs crates/core/src/table/probe.rs \
    crates/core/src/fpcache.rs crates/table/src/probe.rs crates/table/src/meta.rs \
    | strip_comments | grep .; then
  echo "layering violation: read-path modules must not name the write-capable pmem trait" >&2
  lint_fail=1
fi
# The batch read pipeline must stay free of persistence verbs end to end
# (get_batch = 0 flushes / 0 fences / 0 atomic writes — pinned by
# tests/concurrent_stress.rs): prefetch is the only pool verb the batch
# helpers may add, and only through the read handle.
if grep -nE '\.flush\(|\.fence\(|\.atomic_write' crates/core/src/table/readview.rs \
    | strip_comments | grep .; then
  echo "layering violation: the read view must not issue persistence verbs" >&2
  lint_fail=1
fi
# The value-heap stack layers the same way: the size-class/layout layer
# (classes.rs) is pure geometry and never touches pmem, and the KV
# engine talks only to the heap policy layer — reaching past it into
# the slab store or its bitmaps would bypass the wear rotation and the
# GC bookkeeping.
if grep -rnH "nvm_pmem" crates/alloc/src/classes.rs \
    | strip_comments | grep .; then
  echo "layering violation: the size-class layer (classes.rs) must stay pmem-free" >&2
  lint_fail=1
fi
if grep -rnHE 'SlabStore|PmemBitmap|try_alloc_in|\balloc_in\b|locate_flat' crates/kv/src \
    | strip_comments | grep .; then
  echo "layering violation: kv must go through the heap policy layer, not slab-store internals" >&2
  lint_fail=1
fi
# The network front door codes against the Store facade only. If the
# server needs something the facade doesn't expose, the facade grows —
# the server never reaches into the index/heap/scheme layers. (nvm_pmem
# is allowed: supplying backing pools is construction-time plumbing the
# facade deliberately leaves to the caller.)
if grep -rnE 'group_hash|nvm_table|nvm_alloc|nvm_core|nvm_hashfn|nvm_wal|nvm_baselines|nvm_cachesim' \
    crates/server/src \
    | strip_comments | grep .; then
  echo "layering violation: nvm-server must code against the nvm-kv Store facade only" >&2
  lint_fail=1
fi
[ "$lint_fail" -eq 0 ]

echo "==> error-type lint (no stringly-typed public Results)"
# The batched-API redesign retired Result<_, String> from every public
# surface; table/core/baselines/kv/alloc fail typed (TableError/
# InsertError/BatchError/KvError/AllocError) or not at all.
if grep -rn "Result<[^>]*, String>" \
    crates/table/src crates/core/src crates/baselines/src crates/kv/src \
    crates/alloc/src; then
  echo "error-type violation: public APIs must use typed errors, not Result<_, String>" >&2
  exit 1
fi

echo "==> concurrency stress tests"
cargo test -q --test concurrent_stress

echo "==> concurrency stress tests (release, elevated iterations)"
# The writer stress tests scale with NVM_STRESS_ITERS; the release run
# gives the CAS/latch/expansion machinery real iteration counts that
# would be too slow under the debug profile.
NVM_STRESS_ITERS=20000 cargo test --release -q --test concurrent_stress -- \
  single_shard_cas_contention_loses_no_writes expansion_mid_stream_keeps_every_write

echo "==> occupancy-commit lint (CAS protocol has one owner)"
# The lock-free write protocol is only sound if every occupancy-bit
# mutation in the scheme's hot path goes through the cell store's
# publish/retract (exclusive) or try_publish/try_retract (CAS) — those
# are the sole callers of the bitmap mutators. Direct bitmap writes from
# the core table/concurrent/resize layers would bypass the commit
# choreography. (crates/core/src/bulk.rs is the documented exception:
# bulk load commits whole precomputed words while holding the table
# exclusively.)
if grep -rnE 'set_and_persist|set_volatile|cas_bit_and_persist|atomic_write[^(]*word_off' \
    crates/core/src/table crates/core/src/concurrent.rs crates/core/src/resize.rs \
    crates/core/src/fpcache.rs \
    | strip_comments | grep .; then
  echo "occupancy lint: core scheme paths must commit occupancy via the cell store" >&2
  exit 1
fi

echo "==> iceberg stability lint (entries never move after insert)"
# The iceberg scheme's whole crash argument rests on stability: no
# displacement, no backward shift, no direct occupancy-bit mutation —
# every commit goes through the cell store's publish/retract (tagged)
# helpers. A displacement helper or raw bitmap verb appearing in
# iceberg.rs means the stability guarantee (and the bare-mode
# crash-safety it buys) silently broke.
if grep -rnE 'set_and_persist|set_volatile|cas_bit_and_persist|backward_shift|evict_to|fn displace|\.displace\(' \
    crates/baselines/src/iceberg.rs \
    | strip_comments | grep .; then
  echo "stability lint: iceberg.rs must not move entries or touch occupancy bits directly" >&2
  exit 1
fi
# The only displacement iceberg may ever record is the literal zero
# (stability's instrumentation signature).
if grep -n 'record_displacement(' crates/baselines/src/iceberg.rs \
    | grep -v 'record_displacement(0)' | grep .; then
  echo "stability lint: iceberg.rs recorded a non-zero displacement" >&2
  exit 1
fi

echo "==> online-expansion shape lint"
# Expansion must stay incremental: the resizer drains through the
# bounded migration cursor (migrate_step), never by re-inserting a full
# table scan (for_each_entry = the old stop-the-world rebuild), and the
# sharded table must expose the bounded drainer (expand_step).
if grep -q "for_each_entry" crates/core/src/resize.rs; then
  echo "expansion lint: resize.rs regressed to a stop-the-world rebuild" >&2
  exit 1
fi
grep -q "migrate_step" crates/core/src/resize.rs || {
  echo "expansion lint: resize.rs no longer uses the bounded migration drainer" >&2
  exit 1
}
grep -q "expand_step" crates/core/src/concurrent.rs || {
  echo "expansion lint: ShardedGroupHash lost its bounded expand_step drainer" >&2
  exit 1
}

echo "==> server loopback smoke test (ephemeral port, scripted session, clean shutdown)"
# Boots the real TCP server over a Store on 127.0.0.1:0, runs a scripted
# set/get/multi-get/gets/delete/stats/quit session, and requires every
# thread to join on shutdown.
cargo test -q -p nvm-server --test smoke

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --no-run --workspace

echo "==> cargo test --doc (runnable examples in rustdoc)"
cargo test -q --doc --workspace

echo "==> docs gate: every results/*.csv cited in EXPERIMENTS.md exists"
docs_fail=0
for f in $(grep -oE 'results/[A-Za-z0-9_.-]+\.csv' EXPERIMENTS.md | sort -u); do
  if [ ! -f "$f" ]; then
    echo "EXPERIMENTS.md cites $f but it is not checked in" >&2
    docs_fail=1
  fi
done
[ "$docs_fail" -eq 0 ]

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
