#!/usr/bin/env bash
# Local CI gate — run before every commit. Mirrors what a hosted CI
# would run, strictest flags on: docs and lints are errors, not noise.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> cargo test -q (group-hash, instrument feature)"
cargo test -q -p group-hash --features instrument

echo "==> cargo bench --no-run (benches must compile)"
cargo bench --no-run --workspace

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
