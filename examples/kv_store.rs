//! A small persistent key-value store in the style the paper motivates
//! (memcached/MemC3-like: dominated by small items), built on the sharded
//! concurrent group hash and driven from multiple threads.
//!
//! Keys are strings, hashed to 16-byte fingerprints with MurmurHash3;
//! values are fixed 24-byte inline records (a common small-item layout —
//! larger values would hold a pointer into a pmem heap instead).
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use group_hashing::core::{GroupHashConfig, ShardedGroupHash};
use group_hashing::hashfn::murmur3_x64_128;
use group_hashing::pmem::RealPmem;
use std::sync::Arc;
use std::time::Instant;

/// Fixed-width inline value record.
type Value = [u8; 24];

/// String-keyed KV store over the sharded group hash.
struct KvStore {
    table: ShardedGroupHash<RealPmem, [u8; 16], Value>,
}

impl KvStore {
    fn new(shards: usize, cells_per_level: u64) -> Self {
        let cfg = GroupHashConfig::new(cells_per_level, 256);
        let table = ShardedGroupHash::create(shards, cfg, |_, size| {
            // Raw DRAM latency here; pass RealPmem::new(size) for the
            // paper's 300 ns emulated NVM write latency.
            RealPmem::with_write_latency(size, 0)
        })
        .expect("create shards");
        KvStore { table }
    }

    fn fingerprint(key: &str) -> [u8; 16] {
        let (lo, hi) = murmur3_x64_128(key.as_bytes(), 0x5EED);
        let mut f = [0u8; 16];
        f[..8].copy_from_slice(&lo.to_le_bytes());
        f[8..].copy_from_slice(&hi.to_le_bytes());
        f
    }

    fn encode(value: &str) -> Value {
        let mut v = [0u8; 24];
        let bytes = value.as_bytes();
        assert!(bytes.len() < 24, "inline values only in this demo");
        v[0] = bytes.len() as u8;
        v[1..1 + bytes.len()].copy_from_slice(bytes);
        v
    }

    fn decode(v: &Value) -> String {
        let len = v[0] as usize;
        String::from_utf8_lossy(&v[1..1 + len]).into_owned()
    }

    fn set(&self, key: &str, value: &str) {
        let f = Self::fingerprint(key);
        // Upsert: remove any existing entry first.
        self.table.remove(&f);
        self.table.insert(f, Self::encode(value)).expect("kv set");
    }

    fn get(&self, key: &str) -> Option<String> {
        self.table.get(&Self::fingerprint(key)).map(|v| Self::decode(&v))
    }

    fn delete(&self, key: &str) -> bool {
        self.table.remove(&Self::fingerprint(key))
    }
}

fn main() {
    let store = Arc::new(KvStore::new(8, 1 << 14));

    // Basic usage.
    store.set("user:1001:name", "ada lovelace");
    store.set("user:1001:role", "engine programmer");
    assert_eq!(store.get("user:1001:name").as_deref(), Some("ada lovelace"));
    store.set("user:1001:name", "ada king"); // upsert
    assert_eq!(store.get("user:1001:name").as_deref(), Some("ada king"));
    assert!(store.delete("user:1001:role"));
    assert_eq!(store.get("user:1001:role"), None);
    println!("basic set/get/upsert/delete: ok");

    // Multi-threaded mixed workload.
    let threads = 4;
    let per_thread = 20_000u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = format!("t{tid}:item:{i}");
                    store.set(&key, "payload-0123456789");
                    if i % 4 == 0 {
                        assert!(store.get(&key).is_some());
                    }
                    if i % 16 == 0 {
                        store.delete(&key);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed();
    let total_ops = threads as u64 * per_thread * 2; // rough: set + some reads/deletes
    println!(
        "{} threads x {} items: {:.2}s ({:.0} ops/s), {} resident entries",
        threads,
        per_thread,
        elapsed.as_secs_f64(),
        total_ops as f64 / elapsed.as_secs_f64(),
        store.table.len()
    );

    store.table.check_consistency().expect("consistent");
    println!("post-workload consistency check passed");
}
