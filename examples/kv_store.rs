//! A small persistent key-value store in the style the paper motivates
//! (memcached/MemC3-like: dominated by small items), built on the
//! unified [`Store`] facade and driven from multiple threads.
//!
//! The facade handles everything the old hand-rolled version did by
//! hand: string keys fingerprint into the group-hash index, values land
//! in the crash-consistent slab heap (no fixed-width limit), upserts are
//! a single atomic pointer swap, and concurrent writers' commits
//! coalesce into shared fence-amortized batches.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use group_hashing::kv::prelude::*;
use group_hashing::pmem::RealPmem;
use std::time::Instant;

fn main() {
    let store = StoreBuilder::new()
        .capacity(200_000, 32)
        .shards(8)
        // Raw DRAM latency here; `RealPmem::new(size)` gives the
        // paper's 300 ns emulated NVM write latency instead.
        .create_with(|_, size| RealPmem::with_write_latency(size, 0))
        .expect("create shards");

    // Basic usage.
    store.set(b"user:1001:name", b"ada lovelace").unwrap();
    store.set(b"user:1001:role", b"engine programmer").unwrap();
    assert_eq!(store.get(b"user:1001:name").as_deref(), Some(&b"ada lovelace"[..]));
    store.set(b"user:1001:name", b"ada king").unwrap(); // upsert
    assert_eq!(store.get(b"user:1001:name").as_deref(), Some(&b"ada king"[..]));
    assert!(store.delete(b"user:1001:role").unwrap());
    assert_eq!(store.get(b"user:1001:role"), None);
    println!("basic set/get/upsert/delete: ok");

    // Multi-threaded mixed workload: every clone shares the shards, and
    // sets issued while another thread holds a shard's commit lease ride
    // that thread's group commit.
    let threads = 4;
    let per_thread = 20_000u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|tid| {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let key = format!("t{tid}:item:{i}");
                    store.set(key.as_bytes(), b"payload-0123456789").unwrap();
                    if i % 4 == 0 {
                        assert!(store.get(key.as_bytes()).is_some());
                    }
                    if i % 16 == 0 {
                        store.delete(key.as_bytes()).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed();
    let total_ops = threads as u64 * per_thread * 2; // rough: set + some reads/deletes
    let c = store.counters();
    println!(
        "{} threads x {} items: {:.2}s ({:.0} ops/s), {} resident entries",
        threads,
        per_thread,
        elapsed.as_secs_f64(),
        total_ops as f64 / elapsed.as_secs_f64(),
        store.len()
    );
    println!(
        "group commit: {} sets in {} batches ({:.1} ops/commit)",
        c.sets,
        c.batches,
        c.sets as f64 / c.batches.max(1) as f64
    );

    store.check_consistency().expect("consistent");
    println!("post-workload consistency check passed");
}
