//! A deduplication fingerprint index — the paper's Fingerprint-trace
//! scenario made concrete: an MD5-keyed table mapping content digests to
//! storage locations, as a backup/snapshot system keeps on NVM.
//!
//! Runs on the deterministic simulator so it also reports the paper's
//! metrics (flushed lines, L3 misses) for the dedup workload.
//!
//! ```text
//! cargo run --release --example dedup_index
//! ```

use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme};
use group_hashing::pmem::{Pmem, Region, SimConfig, SimPmem};
use group_hashing::traces::{Fingerprint, Trace};

/// Where a chunk lives: (container id, offset) packed in 16 bytes.
type Location = [u8; 16];

fn location(container: u64, offset: u64) -> Location {
    let mut l = [0u8; 16];
    l[..8].copy_from_slice(&container.to_le_bytes());
    l[8..].copy_from_slice(&offset.to_le_bytes());
    l
}

fn main() {
    let cfg = GroupHashConfig::new(1 << 16, 256);
    let size = GroupHash::<SimPmem, [u8; 16], Location>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::paper_default());
    let mut index =
        GroupHash::<_, [u8; 16], Location>::create(&mut pm, Region::new(0, size), cfg)
            .expect("create");

    // Ingest a synthetic snapshot stream: each incoming chunk digest is
    // looked up first (dedup hit?) and only new content is stored.
    let mut trace = Fingerprint::new(42);
    let mut stored = 0u64;
    let mut dup_hits = 0u64;
    let mut container = 0u64;
    let mut offset = 0u64;

    // First snapshot batch: all-new content.
    let batch1 = trace.take_keys(40_000);
    for d in &batch1 {
        assert!(index.get(&pm, d).is_none());
        index
            .insert(&mut pm, *d, location(container, offset))
            .expect("index insert");
        stored += 1;
        offset += 4096;
        if offset == 4096 * 1024 {
            container += 1;
            offset = 0;
        }
    }

    // Re-ingest the same logical files (a second backup of the same data):
    // every digest is a dedup hit, no writes at all.
    pm.reset_stats();
    for d in &batch1 {
        if index.get(&pm, d).is_some() {
            dup_hits += 1;
        }
    }
    assert_eq!(pm.stats().flushes, 0, "dedup hits must not write NVM");
    let miss_per_lookup =
        pm.cache_stats().unwrap().llc_misses() as f64 / batch1.len() as f64;

    println!("stored {stored} unique chunks, {dup_hits} dedup hits on re-backup");
    println!(
        "lookup cost: {:.2} L3 misses/op, 0 NVM writes (read-only dedup path)",
        miss_per_lookup
    );

    // Garbage collection: a retention policy drops a container; delete its
    // digests from the index.
    let victims: Vec<[u8; 16]> = batch1
        .iter()
        .filter(|d| {
            index
                .get(&pm, d)
                .map(|l| u64::from_le_bytes(l[..8].try_into().unwrap()) == 0)
                .unwrap_or(false)
        })
        .copied()
        .collect();
    for d in &victims {
        assert!(index.remove(&mut pm, d));
    }
    println!(
        "garbage-collected container 0: {} digests removed, {} remain",
        victims.len(),
        index.len(&pm)
    );

    index.check_consistency(&pm).expect("consistent");
    println!("index consistent after GC");
}
