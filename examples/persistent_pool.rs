//! End-to-end durability across process runs: build a table, persist the
//! pool image to disk, "restart" (drop everything), reload, and carry on —
//! the emulated equivalent of remapping a real NVM region after reboot.
//!
//! ```text
//! cargo run --release --example persistent_pool
//! ```

use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme};
use group_hashing::pmem::{PmemRead, Region, SimConfig, SimPmem};

fn main() {
    let path = std::env::temp_dir().join("group-hashing-demo.pool");
    let cfg = GroupHashConfig::new(1 << 12, 64);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let region = Region::new(0, size);

    // ---- "First process run": create, populate, persist, save. ----
    {
        let mut pm = SimPmem::new(size, SimConfig::paper_default());
        let mut table = GroupHash::<_, u64, u64>::create(&mut pm, region, cfg).expect("create");
        for k in 0..3000u64 {
            table.insert(&mut pm, k, k * k).expect("insert");
        }
        // The table persists every update as it goes; the pool is already
        // quiescent, so the image saves directly.
        pm.save_image(&path).expect("save image");
        println!(
            "run 1: inserted {} items, saved {}-byte pool to {}",
            table.len(&pm),
            pm.len(),
            path.display()
        );
    } // everything dropped — "process exit"

    // ---- "Second process run": reload and continue. ----
    {
        let mut pm =
            SimPmem::load_image(&path, SimConfig::paper_default()).expect("load image");
        let mut table = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).expect("open");
        // A clean shutdown needs no recovery, but running Algorithm 4 is
        // always safe (idempotent) — do it, as a real application would
        // when it cannot distinguish clean from crashed shutdown.
        table.recover(&mut pm);
        table.check_consistency(&pm).expect("consistent");

        assert_eq!(table.len(&pm), 3000);
        assert_eq!(table.get(&pm, &1234), Some(1234 * 1234));
        table.insert(&mut pm, 999_999, 1).expect("insert more");
        println!(
            "run 2: reloaded {} items, all values intact, appended one more",
            table.len(&pm) - 1
        );
        pm.save_image(&path).expect("re-save");
    }

    // ---- "Third run": verify the append survived too. ----
    {
        let mut pm =
            SimPmem::load_image(&path, SimConfig::paper_default()).expect("load image");
        let table = GroupHash::<SimPmem, u64, u64>::open(&mut pm, region).expect("open");
        assert_eq!(table.get(&pm, &999_999), Some(1));
        println!("run 3: {} items — durability across three runs", table.len(&pm));
    }

    let _ = std::fs::remove_file(&path);
}
