//! Quickstart: create a group hash table on simulated NVM, do the basic
//! operations, and inspect what they cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme, TableAnalysis};
use group_hashing::pmem::{Pmem, Region, SimConfig, SimPmem};

fn main() {
    // 2^16 cells per level (128 Ki cells total), the paper's default
    // group size of 256.
    let cfg = GroupHashConfig::new(1 << 16, 256);
    let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
    let mut pm = SimPmem::new(size, SimConfig::paper_default());
    let region = Region::new(0, size);
    let mut table = GroupHash::<_, u64, u64>::create(&mut pm, region, cfg).expect("create");

    println!("pool: {:.1} MiB, capacity: {} cells", size as f64 / (1 << 20) as f64, table.capacity());

    // Insert some items.
    for k in 0..50_000u64 {
        table.insert(&mut pm, k, k * 10).expect("insert");
    }
    println!(
        "inserted {} items, load factor {:.2}",
        table.len(&pm),
        table.load_factor(&pm)
    );

    // Point lookups.
    assert_eq!(table.get(&pm, &123), Some(1230));
    assert_eq!(table.get(&pm, &999_999), None);

    // Delete.
    assert!(table.remove(&mut pm, &123));
    assert_eq!(table.get(&pm, &123), None);

    // What did a single insert cost? (The paper's point: exactly three
    // persisted cachelines — cell, bitmap word, count — no log writes.)
    pm.reset_stats();
    table.insert(&mut pm, 999_999, 1).unwrap();
    let s = pm.stats();
    println!(
        "one insert: {} writes, {} flushed lines, {} fences, {} ns simulated",
        s.writes,
        s.flushes,
        s.fences,
        pm.sim_time_ns().unwrap()
    );

    // Where do items live?
    let a = TableAnalysis::capture(&table, &pm);
    println!(
        "occupancy: {} in level 1 (hash-addressed), {} in level 2 (collision groups)",
        a.level1_used, a.level2_used
    );
    println!(
        "fullest group holds {} of {} possible cells",
        a.max_group_fill(),
        2 * cfg.group_size
    );

    // Integrity check (O(capacity); great in tests, optional in prod).
    table.check_consistency(&pm).expect("consistent");
    println!("consistency check passed");
}
