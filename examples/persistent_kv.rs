//! A durable key-value store with variable-size values: the unified
//! [`Store`] facade (group-hash index + slab heap) plus disk-image
//! persistence, surviving a simulated power failure *and* process
//! restarts.
//!
//! ```text
//! cargo run --release --example persistent_kv
//! ```

use group_hashing::kv::prelude::*;
use group_hashing::pmem::{CrashResolution, SimConfig, SimPmem};

fn main() {
    let builder = StoreBuilder::new().capacity(10_000, 128);
    let path = std::env::temp_dir().join("group-hashing-kv.pool");

    // ---- Session 1: build a small document store. ----
    {
        let store = builder
            .create_with(|_, size| SimPmem::new(size, SimConfig::paper_default()))
            .expect("create");

        store.set(b"doc:readme", b"Group hashing: a write-efficient, consistent hash table for NVM.").unwrap();
        store.set(b"doc:license", b"MIT OR Apache-2.0").unwrap();
        for i in 0..5000u32 {
            let key = format!("event:{i:05}");
            let value = format!("{{\"seq\":{i},\"payload\":\"{}\"}}", "x".repeat((i % 80) as usize));
            store.set(key.as_bytes(), value.as_bytes()).unwrap();
        }
        // Values are variable-size: updates move them between size classes.
        store.set(b"doc:readme", b"Now a much longer README body: the store keeps variable-size values in a crash-consistent slab heap addressed by persistent pointers from the hash index.").unwrap();

        let (entries, slots) = store.usage();
        println!("session 1: {entries} entries in {slots} heap slots");

        // Power failure in the middle of nowhere particular: tear the
        // facade down to its bare pool, lose every unfenced word, and
        // come back up through the recovery path.
        let mut pools = store.into_pools().ok().expect("sole handle");
        pools[0].crash(CrashResolution::Random(42));
        let store = builder.recover(pools).expect("reopen");
        store.check_consistency().expect("consistent after crash");
        println!("survived a power failure (recovery ran clean)");

        let pools = store.into_pools().ok().expect("sole handle");
        pools[0].save_image(&path).expect("save pool image");
    }

    // ---- Session 2: a new process loads the pool and reads on. ----
    {
        let pm = SimPmem::load_image(&path, SimConfig::paper_default()).expect("load");
        let store = builder.recover(vec![pm]).expect("open");

        let readme = store.get(b"doc:readme").expect("readme survived");
        assert!(readme.starts_with(b"Now a much longer README"));
        assert_eq!(
            store.get(b"event:04999").as_deref().map(|v| v.len()),
            Some(format!("{{\"seq\":4999,\"payload\":\"{}\"}}", "x".repeat(4999 % 80)).len())
        );
        println!(
            "session 2: reloaded {} entries; updated README intact ({} bytes)",
            store.len(),
            readme.len()
        );

        // Retention: delete old events in fence-coalesced batches, then
        // verify nothing leaked.
        let doomed: Vec<Vec<u8>> = (0..2500u32)
            .map(|i| format!("event:{i:05}").into_bytes())
            .collect();
        let doomed_refs: Vec<&[u8]> = doomed.iter().map(|k| k.as_slice()).collect();
        let deleted = store.delete_batch(&doomed_refs).expect("delete batch");
        let (entries, slots) = store.usage();
        println!("deleted {deleted} old events: {entries} entries, {slots} slots (no leaks)");
        assert_eq!(entries, slots);
        store.check_consistency().expect("consistent");
    }

    let _ = std::fs::remove_file(&path);
    println!("done");
}
