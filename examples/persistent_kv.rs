//! A durable key-value store with variable-size values: the `nvm-kv`
//! engine (group-hash index + slab heap) plus disk-image persistence,
//! surviving a simulated power failure *and* process restarts.
//!
//! ```text
//! cargo run --release --example persistent_kv
//! ```

use group_hashing::kv::{KvConfig, PmemKv};
use group_hashing::pmem::{CrashResolution, Region, SimConfig, SimPmem};

fn main() {
    let cfg = KvConfig::for_capacity(10_000, 128);
    let size = PmemKv::<SimPmem>::required_size(&cfg);
    let region = Region::new(0, size);
    let path = std::env::temp_dir().join("group-hashing-kv.pool");

    // ---- Session 1: build a small document store. ----
    {
        let mut pm = SimPmem::new(size, SimConfig::paper_default());
        let mut kv = PmemKv::create(&mut pm, region, &cfg).expect("create");

        kv.set(&mut pm, b"doc:readme", b"Group hashing: a write-efficient, consistent hash table for NVM.").unwrap();
        kv.set(&mut pm, b"doc:license", b"MIT OR Apache-2.0").unwrap();
        for i in 0..5000u32 {
            let key = format!("event:{i:05}");
            let value = format!("{{\"seq\":{i},\"payload\":\"{}\"}}", "x".repeat((i % 80) as usize));
            kv.set(&mut pm, key.as_bytes(), value.as_bytes()).unwrap();
        }
        // Values are variable-size: updates move them between size classes.
        kv.set(&mut pm, b"doc:readme", b"Now a much longer README body: the store keeps variable-size values in a crash-consistent slab heap addressed by persistent pointers from the hash index.").unwrap();

        let (entries, slots) = kv.usage(&pm);
        println!("session 1: {entries} entries in {slots} heap slots");

        // Power failure in the middle of nowhere particular...
        pm.crash(CrashResolution::Random(42));
        let mut kv = PmemKv::open(&mut pm, region).expect("reopen");
        let leaks = kv.recover(&mut pm);
        kv.check_consistency(&pm).expect("consistent after crash");
        println!("survived a power failure (recovery reclaimed {leaks} leaked slots)");

        pm.save_image(&path).expect("save pool image");
    }

    // ---- Session 2: a new process loads the pool and reads on. ----
    {
        let mut pm = SimPmem::load_image(&path, SimConfig::paper_default()).expect("load");
        let mut kv = PmemKv::open(&mut pm, region).expect("open");
        kv.recover(&mut pm);

        let readme = kv.get(&pm, b"doc:readme").expect("readme survived");
        assert!(readme.starts_with(b"Now a much longer README"));
        assert_eq!(
            kv.get(&pm, b"event:04999").as_deref().map(|v| v.len()),
            Some(format!("{{\"seq\":4999,\"payload\":\"{}\"}}", "x".repeat(4999 % 80)).len())
        );
        println!(
            "session 2: reloaded {} entries; updated README intact ({} bytes)",
            kv.len(&pm),
            readme.len()
        );

        // Retention: delete old events, then garbage-collect.
        let mut deleted = 0;
        for i in 0..2500u32 {
            if kv.delete(&mut pm, format!("event:{i:05}").as_bytes()) {
                deleted += 1;
            }
        }
        let (entries, slots) = kv.usage(&pm);
        println!("deleted {deleted} old events: {entries} entries, {slots} slots (no leaks)");
        assert_eq!(entries, slots);
        kv.check_consistency(&pm).expect("consistent");
    }

    let _ = std::fs::remove_file(&path);
    println!("done");
}
