//! Group-size tuning (the paper's §4.5 trade-off, as a library user would
//! run it on their own workload): sweep group sizes, report latency,
//! L3 misses, and space utilization, and suggest a choice.
//!
//! ```text
//! cargo run --release --example tune_group_size
//! ```

use group_hashing::harness::experiments::runner::{run_workload, utilization};
use group_hashing::harness::{SchemeKind, TraceKind};

fn main() {
    let cells = 1 << 16;
    let seed = 2018;
    println!("sweeping group sizes on RandomNum, {cells} cells, LF 0.5\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>9}  {:>11}",
        "group size", "insert ns", "query ns", "delete ns", "util", "miss/query"
    );

    let mut best: Option<(u64, f64)> = None;
    for gs in [16u64, 32, 64, 128, 256, 512, 1024] {
        let r = run_workload(
            SchemeKind::Group,
            TraceKind::RandomNum,
            cells,
            0.5,
            500,
            seed,
            gs,
        );
        let u = utilization(SchemeKind::Group, TraceKind::RandomNum, cells, seed, gs);
        println!(
            "{:>10}  {:>10.0}  {:>10.0}  {:>10.0}  {:>8.1}%  {:>11.2}",
            gs,
            r.insert.avg_ns(),
            r.query.avg_ns(),
            r.delete.avg_ns(),
            u * 100.0,
            r.query.avg_llc_misses(),
        );
        // Score: smallest group size whose utilization clears 80 %
        // (the paper's rationale for picking 256).
        if u >= 0.80 && best.is_none() {
            best = Some((gs, u));
        }
    }

    match best {
        Some((gs, u)) => println!(
            "\nsuggestion: group size {gs} — first size reaching >=80% utilization ({:.1}%) \
             with the lowest latency among those",
            u * 100.0
        ),
        None => println!("\nno group size reached 80% utilization at this table size"),
    }
}
