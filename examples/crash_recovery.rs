//! Crash recovery demo: power-fail a table mid-insert at every possible
//! instant, recover with Algorithm 4, and show the table is intact every
//! time.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use group_hashing::core::{GroupHash, GroupHashConfig, HashScheme};
use group_hashing::pmem::{
    run_with_crash, CrashPlan, CrashResolution, Pmem, Region, SimConfig, SimPmem,
};

type Table = GroupHash<SimPmem, u64, u64>;

fn main() {
    let cfg = GroupHashConfig::new(1 << 10, 64);
    let size = Table::required_size(&cfg);
    let region = Region::new(0, size);

    // Build a populated table once.
    let mut pm0 = SimPmem::new(size, SimConfig::paper_default());
    let mut t0 = Table::create(&mut pm0, region, cfg).expect("create");
    for k in 0..900u64 {
        t0.insert(&mut pm0, k, k + 1).unwrap();
    }
    println!("base table: {} items", t0.len(&pm0));

    // Now crash an insert of key 5000 at every mutation event it performs.
    let mut crash_points = 0;
    let mut survived_with_key = 0;
    let mut survived_without_key = 0;
    for at in 0..200 {
        let mut pm = pm0.clone();
        let mut t = Table::open(&mut pm, region).expect("open");
        let base = pm.events();
        pm.set_crash_plan(Some(CrashPlan {
            at_event: base + at,
        }));
        let completed = run_with_crash(|| t.insert(&mut pm, 5000, 42).unwrap()).is_ok();
        if completed {
            // The insert used `at` events in total; we've crashed at every
            // interior point.
            println!("insert performs {at} mutation events; crash injected at each");
            break;
        }
        crash_points += 1;

        // Power failure: unflushed cachelines resolve arbitrarily.
        pm.crash(CrashResolution::Random(at));

        // Reboot: reopen from the surviving bytes and run Algorithm 4.
        let mut t = Table::open(&mut pm, region).expect("reopen");
        t.recover(&mut pm);
        t.check_consistency(&pm).expect("recovered state consistent");

        // All 900 committed items are intact...
        for k in 0..900u64 {
            assert_eq!(t.get(&pm, &k), Some(k + 1), "lost key {k}");
        }
        // ...and the in-flight insert is atomic: fully there or fully gone.
        match t.get(&pm, &5000) {
            Some(v) => {
                assert_eq!(v, 42);
                survived_with_key += 1;
            }
            None => survived_without_key += 1,
        }
    }

    println!(
        "{crash_points} crash points tested: {survived_with_key} recovered WITH the in-flight key, \
         {survived_without_key} WITHOUT — never a torn state, never a lost committed item"
    );

    // The recovery cost: one sequential scan (paper Table 3: <1% of build).
    let mut pm = pm0.clone();
    let mut t = Table::open(&mut pm, region).expect("open");
    let t0_ns = pm.sim_time_ns().unwrap();
    t.recover(&mut pm);
    println!(
        "recovery of a {}-cell table: {} µs simulated",
        t.capacity(),
        (pm.sim_time_ns().unwrap() - t0_ns) / 1000
    );
}
