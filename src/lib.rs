//! # group-hashing — facade crate
//!
//! One-stop entry point for the group-hashing reproduction workspace
//! (*"A Write-efficient and Consistent Hashing Scheme for Non-Volatile
//! Memory"*, ICPP 2018). Re-exports every sub-crate under a stable
//! namespace; see the README for the architecture and `group_hash` (the
//! `core` module here) for the main data structure.
//!
//! ```
//! use group_hashing::core::{GroupHash, GroupHashConfig};
//! use group_hashing::pmem::{Pmem, Region, SimConfig, SimPmem};
//!
//! let cfg = GroupHashConfig::new(1 << 8, 16);
//! let size = GroupHash::<SimPmem, u64, u64>::required_size(&cfg);
//! let mut pm = SimPmem::new(size, SimConfig::fast_test());
//! let mut t = GroupHash::<_, u64, u64>::create(&mut pm, Region::new(0, size), cfg).unwrap();
//! t.insert(&mut pm, 7, 70).unwrap();
//! assert_eq!(t.get(&mut pm, &7), Some(70));
//! ```

/// The paper's contribution: the group hash table.
pub use group_hash as core;

/// Crash-consistent slab allocator for variable-size blobs.
pub use nvm_alloc as alloc;

/// Baseline schemes: linear probing, PFHT, path hashing.
pub use nvm_baselines as baselines;

/// Key-value engine: group-hash index + slab heap.
pub use nvm_kv as kv;

/// CPU cache hierarchy simulator.
pub use nvm_cachesim as cachesim;

/// Hash functions, MD5, key/value traits.
pub use nvm_hashfn as hashfn;

/// NVM substrate: simulated and real persistent memory.
pub use nvm_pmem as pmem;

/// Shared persistent-table toolkit.
pub use nvm_table as table;

/// Trace generators and the workload driver.
pub use nvm_traces as traces;

/// Undo-log substrate.
pub use nvm_wal as wal;

/// Experiment harness (figures/tables reproduction).
pub use gh_harness as harness;
