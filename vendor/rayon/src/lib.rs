//! Offline stand-in for the `rayon` crate.
//!
//! No code in the workspace currently calls rayon at runtime (it is a
//! declared bench dependency only), so this stub provides just enough to
//! satisfy the dependency graph plus a sequential [`prelude`] fallback:
//! `par_iter`/`into_par_iter` here are the ordinary serial iterators.
//! If real data-parallel speedups are ever needed, vendor the actual
//! crate or gate the parallel path behind a feature.

/// Sequential stand-ins for rayon's parallel iterator entry points.
pub mod prelude {
    /// `par_iter()` as a plain shared-reference iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type of the iterator.
        type Item: 'a;
        /// Iterator type returned.
        type Iter: Iterator<Item = Self::Item>;
        /// Sequential `par_iter`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a, C> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator<Item = &'a T>,
        C: ?Sized + 'a,
    {
        type Item = &'a T;
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `into_par_iter()` as a plain owning iterator.
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// Iterator type returned.
        type Iter: Iterator<Item = Self::Item>;
        /// Sequential `into_par_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Item = C::Item;
        type Iter = C::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Runs the two closures (sequentially here; in real rayon, in parallel).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_fallbacks_iterate() {
        let v = vec![1u64, 2, 3];
        let s: u64 = v.par_iter().sum();
        assert_eq!(s, 6);
        let t: u64 = v.into_par_iter().map(|x| x * 2).sum();
        assert_eq!(t, 12);
        assert_eq!(super::join(|| 1, || 2), (1, 2));
    }
}
