//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API (the
//! subset this workspace uses: [`Mutex`], [`RwLock`], and their guards).
//! A panic while holding a lock simply releases it, matching parking_lot's
//! semantics of not propagating poison.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; the lock is released on drop.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
