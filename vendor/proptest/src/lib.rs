//! Offline stand-in for the `proptest` crate.
//!
//! This container builds without crates.io access, so the workspace
//! vendors a small property-testing engine that is source-compatible with
//! the `proptest` subset its test suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map`, integer/float range strategies, tuple
//!   strategies, [`any`], [`collection::vec`], [`collection::hash_set`],
//!   and [`prop_oneof!`],
//! * [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`]/
//!   [`prop_assume!`] and [`TestCaseError`].
//!
//! Cases are generated from a deterministic per-test seed, so failures
//! reproduce across runs. Unlike upstream proptest there is **no
//! shrinking**: a failing case reports the case number and message only.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies while sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate small seeds.
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Errors & config
// ---------------------------------------------------------------------------

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected (`prop_assume!`); the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (input did not satisfy an assumption).
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Max rejected samples across the whole run before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Default config with `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Drives one property: samples cases until `config.cases` pass.
/// Panics (failing the `#[test]`) on the first violated case.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-test base seed (FNV-1a of the test name).
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut draw = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(seed.wrapping_add(draw));
        draw += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected inputs \
                         ({rejects}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed (case {passed}, draw {draw}): {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy keeping only values for which `f` is true (by
    /// rejection; bounded attempts per draw).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive draws", self.whence);
    }
}

/// A constant strategy (always yields a clone of the value).
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// One-of-N choice between strategies of a common value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// An empty union; sample panics until an arm is added.
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm.
    pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
        self.arms.push(Box::new(s));
        self
    }
}

impl<V> Default for Union<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

// ----- primitive strategies -----

macro_rules! impl_range_strategy_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )+};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// ----- any -----

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_u64 {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_arbitrary_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — adequate for the workspace's uses, which
    /// only need "some arbitrary float".
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// The full-range strategy for `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ----- collections -----

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// Sizes acceptable to [`vec()`]/[`hash_set`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// The `[min, max)` size span.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end)
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.min + rng.below((self.max - self.min) as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.min + rng.below((self.max - self.min) as u64) as usize;
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts: a narrow element domain may not be able to
            // produce `n` distinct values.
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 100 + 1000 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// A strategy for `HashSet`s of distinct `element` values with
    /// cardinality in `size` (best-effort when the domain is small).
    pub fn hash_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> HashSetStrategy<S> {
        let (min, max) = size.bounds();
        HashSetStrategy { element, min, max }
    }
}

// ---------------------------------------------------------------------------
// Macros & prelude
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```
/// use proptest::prelude::*;
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` in the example is consumed by the macro expansion, which
// is exactly how the real proptest is driven — not a stray test-in-doctest.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), __rng);)+
                (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a), stringify!($b), left, right, file!(), line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {} at {}:{}",
                stringify!($a), stringify!($b), left, right, format!($($fmt)+),
                file!(), line!()
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: {:?}) at {}:{}",
                stringify!($a), stringify!($b), left, file!(), line!()
            )));
        }
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// A strategy choosing uniformly among the listed strategies (all arms
/// must generate the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let u = $crate::Union::new();
        $(let u = u.or($arm);)+
        u
    }};
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{
        Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
    /// `prop::collection::vec(..)`-style paths.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::run_proptest;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = ((0u16..200), any::<u64>()).prop_map(|(k, v)| (k, v));
        for _ in 0..500 {
            let (k, _v) = s.sample(&mut rng);
            assert!(k < 200);
        }
        let f = 0.25f64..0.5;
        for _ in 0..500 {
            let v = Strategy::sample(&f, &mut rng);
            assert!((0.25..0.5).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::new(2);
        let s = prop_oneof![0u32..1, 10u32..11, 20u32..21];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen, [0u32, 10, 20].into_iter().collect());
    }

    #[test]
    fn collection_strategies_respect_sizes() {
        let mut rng = TestRng::new(3);
        let v = collection::vec(0u8..10, 3..7);
        for _ in 0..100 {
            let x = v.sample(&mut rng);
            assert!((3..7).contains(&x.len()));
        }
        let exact = collection::vec(any::<u64>(), 5usize);
        assert_eq!(exact.sample(&mut rng).len(), 5);
        let hs = collection::hash_set(0u64..1000, 10..20);
        for _ in 0..50 {
            let s = hs.sample(&mut rng);
            assert!((10..20).contains(&s.len()), "{}", s.len());
        }
    }

    #[test]
    fn just_and_filter() {
        let mut rng = TestRng::new(4);
        assert_eq!(Just(7u8).sample(&mut rng), 7);
        let evens = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(evens.sample(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, config, assume and assert together.
        #[test]
        fn macro_end_to_end(
            (a, b) in ((0u64..100), (0u64..100)),
            xs in prop::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assume!(a != 99);
            prop_assert!(a < 100, "a = {}", a);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, 100);
            prop_assert!(xs.len() < 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_case_panics() {
        run_proptest(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let one = |seed: u64| {
            let mut rng = TestRng::new(seed);
            collection::vec(any::<u64>(), 4usize).sample(&mut rng)
        };
        assert_eq!(one(9), one(9));
        assert_ne!(one(9), one(10));
    }
}
