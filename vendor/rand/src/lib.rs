//! Offline stand-in for the `rand` crate.
//!
//! This container builds with no crates.io access, so the workspace vendors
//! the narrow API slice it actually uses: [`RngCore`], [`SeedableRng`]
//! (including the SplitMix64-based `seed_from_u64` construction rand_core
//! documents), and [`Rng::gen`]/[`Rng::gen_range`] over the integer and
//! float types the traces and tests sample. Semantics follow `rand` 0.8
//! closely enough for every statistical property asserted in this repo;
//! exact output streams are *not* guaranteed to match the upstream crate.

/// Core random-number source: raw 32/64-bit outputs and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// The SplitMix64 step used to expand a `u64` into seed material
/// (the same construction `rand_core::SeedableRng::seed_from_u64` uses).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let b = splitmix64(&mut s).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (rand's `Standard`).
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased via rejection on the top zone.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return Standard::generate(rng);
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )+};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )+};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::generate(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::generate(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform random value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    /// A uniform random value in `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Fills `dest` with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` — only [`rngs::SmallRng`] is provided.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast PRNG (xoshiro256++-style mixing over SplitMix64 state).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
            let i: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn inclusive_full_range_u64() {
        let mut r = SmallRng::seed_from_u64(4);
        let _: u64 = r.gen_range(0..=u64::MAX);
    }
}
