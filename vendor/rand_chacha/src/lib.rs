//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha stream cipher (Bernstein 2008) with 8
//! rounds as a deterministic, seedable random-number generator exposing
//! the [`rand`] traits. Output quality therefore matches the upstream
//! crate; the exact word stream may differ from upstream's (block-counter
//! conventions), which no test in this workspace depends on.

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round on the 16-word state.
#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha8 generator: 256-bit key (the seed), 64-bit block counter,
/// 64-bit stream id (always 0 here).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// Block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;
    /// "expand 32-byte k"
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&Self::SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = 0;
        s[15] = 0;
        let input = s;
        for _ in 0..Self::ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.block = s;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Resets the stream position to block 0 (keeps the key).
    pub fn set_word_pos(&mut self, word: u64) {
        self.counter = word / 16;
        self.refill();
        self.index = (word % 16) as usize;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, c) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(c.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_changes_every_block() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let b1: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let b2: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(b1, b2);
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 10k uniform [0,1) draws should be near 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // All 64 bit positions should toggle.
        let mut or = 0u64;
        let mut and = u64::MAX;
        for _ in 0..1000 {
            let v = r.next_u64();
            or |= v;
            and &= v;
        }
        assert_eq!(or, u64::MAX);
        assert_eq!(and, 0);
    }

    #[test]
    fn set_word_pos_rewinds() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..20).map(|_| r.next_u32()).collect();
        r.set_word_pos(0);
        let again: Vec<u32> = (0..20).map(|_| r.next_u32()).collect();
        assert_eq!(first, again);
    }
}
