//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — benchmark
//! groups, [`Bencher::iter`]/[`Bencher::iter_batched`], throughput
//! annotations, and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple median-of-samples timer instead of criterion's full
//! statistical pipeline. Good enough to *run* the benches and print
//! comparable numbers; not a replacement for real criterion statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] sizes its setup batches (accepted for
/// API compatibility; this runner always uses per-iteration setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, reporting the median over the sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        // One warm-up iteration.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut times);
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut times);
    }
}

fn median(times: &mut [f64]) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Hard ceiling on measurement time (accepted for API compatibility;
    /// this runner's time is bounded by the sample count instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            samples,
            result_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.result_ns);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher {
            samples,
            result_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.result_ns);
        self
    }

    fn report(&self, id: &str, ns: f64) {
        let thr = match self.throughput {
            Some(Throughput::Bytes(b)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", b as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                format!("  ({:.0} elem/s)", e as f64 / ns * 1e9)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {}{thr}", self.name, human_ns(ns));
    }

    /// Finishes the group (prints nothing extra in this runner).
    pub fn finish(self) {}
}

/// The benchmark runner configuration.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; see
    /// [`BenchmarkGroup::measurement_time`].
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name).bench_function("bench", f);
        self
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("unit");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 3 samples + 1 warm-up.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_fresh_input_each_sample() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("batched");
        g.sample_size(4);
        let mut setups = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![n; 4]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("2^10").to_string(), "2^10");
        assert_eq!(human_ns(1500.0), "1.500 µs");
    }
}
